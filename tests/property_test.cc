// Property-based and parameterized sweeps over the full system:
//  * transparency — an MVEE run's externally observable effects equal a native
//    run's, for every mode, policy level, replica count, and seed swept here;
//  * liveness — every configuration finishes without divergence on benign programs;
//  * determinism — identical (seed, config) pairs produce identical virtual times.

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <tuple>

#include "src/core/remon.h"
#include "src/harness/runner.h"
#include "src/sim/rng.h"
#include "tests/test_util.h"

namespace remon {
namespace {

// A benign program exercising files, pipes, time, memory, and (optionally) sockets;
// writes its observable output to /tmp/prop-out.
ProgramFn PropertyWorkload(int iterations) {
  return [iterations](Guest& g) -> GuestTask<void> {
    int64_t fd = co_await g.Open("/tmp/prop-out", kO_CREAT | kO_RDWR);
    GuestAddr buf = g.Alloc(512);
    GuestAddr st = g.Alloc(sizeof(GuestStat));
    GuestAddr pipe_fds = g.Alloc(8);
    co_await g.Pipe(pipe_fds);
    int prd = static_cast<int>(g.PeekU32(pipe_fds));
    int pwr = static_cast<int>(g.PeekU32(pipe_fds + 4));
    for (int i = 0; i < iterations; ++i) {
      co_await g.Compute(Micros(10));
      std::string line = "iter-" + std::to_string(i) + ";";
      g.Poke(buf, line.data(), line.size());
      co_await g.Write(static_cast<int>(fd), buf, line.size());
      co_await g.Fstat(static_cast<int>(fd), st);
      if (i % 3 == 0) {
        g.Poke(buf, "p", 1);
        co_await g.Write(pwr, buf, 1);
        co_await g.Read(prd, buf, 1);
      }
      if (i % 5 == 0) {
        co_await g.Getpid();
        GuestAddr tv = g.Alloc(sizeof(GuestTimeval));
        co_await g.Gettimeofday(tv);
      }
    }
    co_await g.Close(prd);
    co_await g.Close(pwr);
    co_await g.Close(static_cast<int>(fd));
  };
}

std::string RunAndHarvest(uint64_t seed, MveeMode mode, int replicas, PolicyLevel level,
                          bool* ok) {
  SimWorld w(seed);
  RemonOptions opts;
  opts.mode = mode;
  opts.replicas = replicas;
  opts.level = level;
  Remon mvee(&w.kernel, opts);
  mvee.Launch(PropertyWorkload(40), "prop");
  w.Run();
  *ok = mvee.finished() && !mvee.divergence_detected();
  return w.fs.ReadWholeFile("/tmp/prop-out").value_or("<missing>");
}

using TransparencyParam = std::tuple<MveeMode, int, PolicyLevel, uint64_t>;

class TransparencyTest : public ::testing::TestWithParam<TransparencyParam> {};

TEST_P(TransparencyTest, OutputsMatchNative) {
  auto [mode, replicas, level, seed] = GetParam();
  bool native_ok = false;
  std::string native =
      RunAndHarvest(seed, MveeMode::kNative, 1, PolicyLevel::kNoIpmon, &native_ok);
  ASSERT_TRUE(native_ok);
  bool mvee_ok = false;
  std::string monitored = RunAndHarvest(seed, mode, replicas, level, &mvee_ok);
  EXPECT_TRUE(mvee_ok);
  EXPECT_EQ(native, monitored);
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndLevels, TransparencyTest,
    ::testing::Values(
        TransparencyParam{MveeMode::kGhumveeOnly, 2, PolicyLevel::kNoIpmon, 1},
        TransparencyParam{MveeMode::kGhumveeOnly, 3, PolicyLevel::kNoIpmon, 2},
        TransparencyParam{MveeMode::kGhumveeOnly, 4, PolicyLevel::kNoIpmon, 3},
        TransparencyParam{MveeMode::kRemon, 2, PolicyLevel::kBase, 4},
        TransparencyParam{MveeMode::kRemon, 2, PolicyLevel::kNonsocketRo, 5},
        TransparencyParam{MveeMode::kRemon, 2, PolicyLevel::kNonsocketRw, 6},
        TransparencyParam{MveeMode::kRemon, 2, PolicyLevel::kSocketRo, 7},
        TransparencyParam{MveeMode::kRemon, 2, PolicyLevel::kSocketRw, 8},
        TransparencyParam{MveeMode::kRemon, 3, PolicyLevel::kNonsocketRw, 9},
        TransparencyParam{MveeMode::kRemon, 5, PolicyLevel::kSocketRw, 10},
        TransparencyParam{MveeMode::kRemon, 7, PolicyLevel::kSocketRw, 11},
        TransparencyParam{MveeMode::kVaranLike, 2, PolicyLevel::kSocketRw, 12},
        TransparencyParam{MveeMode::kVaranLike, 4, PolicyLevel::kSocketRw, 13}));

class ReplicaCountTest : public ::testing::TestWithParam<int> {};

TEST_P(ReplicaCountTest, ServerTransparentForAnyReplicaCount) {
  int replicas = GetParam();
  ServerSpec server = ServerByName("lighttpd");
  ClientSpec client;
  client.connections = 4;
  client.total_requests = 40;
  client.request_bytes = 1024;
  LinkParams link{60 * kMicrosecond, 0.125};

  RunConfig native;
  native.mode = MveeMode::kNative;
  ServerResult base = RunServerBench(server, client, native, link);
  ASSERT_EQ(base.requests, 40);

  RunConfig config;
  config.mode = MveeMode::kRemon;
  config.replicas = replicas;
  config.level = PolicyLevel::kSocketRw;
  ServerResult run = RunServerBench(server, client, config, link);
  EXPECT_FALSE(run.diverged);
  EXPECT_EQ(run.requests, 40);  // Every request served exactly once.
}

INSTANTIATE_TEST_SUITE_P(TwoThroughSeven, ReplicaCountTest, ::testing::Range(2, 8));

class SeedSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeedSweepTest, DeterministicAndTransparent) {
  uint64_t seed = GetParam();
  bool ok1 = false;
  bool ok2 = false;
  std::string out1 =
      RunAndHarvest(seed, MveeMode::kRemon, 2, PolicyLevel::kNonsocketRw, &ok1);
  std::string out2 =
      RunAndHarvest(seed, MveeMode::kRemon, 2, PolicyLevel::kNonsocketRw, &ok2);
  EXPECT_TRUE(ok1);
  EXPECT_TRUE(ok2);
  EXPECT_EQ(out1, out2);  // Bit-for-bit reproducible.

  // Virtual durations also reproduce exactly.
  SimWorld wa(seed);
  RemonOptions opts;
  opts.mode = MveeMode::kRemon;
  opts.replicas = 2;
  opts.level = PolicyLevel::kNonsocketRw;
  {
    Remon mvee(&wa.kernel, opts);
    mvee.Launch(PropertyWorkload(20), "d");
    wa.Run();
  }
  SimWorld wb(seed);
  {
    Remon mvee(&wb.kernel, opts);
    mvee.Launch(PropertyWorkload(20), "d");
    wb.Run();
  }
  EXPECT_EQ(wa.sim.now(), wb.sim.now());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweepTest,
                         ::testing::Values(17, 99, 12345, 777777, 31337));

class RbSizeTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RbSizeTest, CorrectUnderAnyBufferSize) {
  uint64_t rb_kb = GetParam();
  SimWorld w(55);
  RemonOptions opts;
  opts.mode = MveeMode::kRemon;
  opts.replicas = 2;
  opts.level = PolicyLevel::kNonsocketRw;
  opts.rb_size = rb_kb * 1024;
  opts.max_ranks = 4;
  Remon mvee(&w.kernel, opts);
  mvee.Launch(PropertyWorkload(60), "rb");
  w.Run();
  EXPECT_TRUE(mvee.finished());
  EXPECT_FALSE(mvee.divergence_detected());
  std::string out = w.fs.ReadWholeFile("/tmp/prop-out").value_or("");
  EXPECT_NE(out.find("iter-59;"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RbSizeTest, ::testing::Values(128, 256, 1024, 16384));

class SuiteSpecTest : public ::testing::TestWithParam<int> {};

TEST_P(SuiteSpecTest, PhoronixSpecsRunCleanlyUnderRemon) {
  std::vector<WorkloadSpec> suite = PhoronixSuite();
  WorkloadSpec spec = suite[static_cast<size_t>(GetParam()) % suite.size()];
  // Shrink for test runtime.
  spec.iterations = std::min(spec.iterations, 100);
  RunConfig config;
  config.mode = MveeMode::kRemon;
  config.replicas = 2;
  config.level = PolicyLevel::kSocketRw;
  SuiteResult result = RunSuiteWorkload(spec, config);
  EXPECT_TRUE(result.finished) << spec.name;
  EXPECT_FALSE(result.diverged) << spec.name;
}

INSTANTIATE_TEST_SUITE_P(AllPhoronix, SuiteSpecTest, ::testing::Range(0, 7));

// --- Randomized lockstep: batched == unbatched under fuzzed interleavings ---------

// One fuzzed multi-rank program. A seeded xoshiro RNG (identical in every replica:
// the stream depends only on seed and rank) drives each rank through a random mix
// of non-blocking batchable calls (regular-file writes/reads, fstat, base queries),
// flush-forcing blocking calls (shared-pipe pings, nanosleep), and skewed compute
// bursts that shuffle the cross-rank interleaving. Every rank logs each op's result
// into its own transcript file — rank-private, so the bytes depend only on the
// rank's own deterministic op stream, never on cross-rank races.
struct FuzzShape {
  int ranks = 2;
  int ops = 10;
};

FuzzShape ShapeFor(uint64_t seed) {
  Rng rng(seed * 0x9e37 + 17);
  FuzzShape shape;
  shape.ranks = static_cast<int>(2 + rng.NextBelow(3));  // 2..4 ranks.
  shape.ops = static_cast<int>(6 + rng.NextBelow(6));    // 6..11 ops per rank.
  return shape;
}

// Replica count per seed: mostly the common 2-replica setup (keeps 1000 seeds
// affordable), with regular 3- and 4-replica excursions for the N-way waits.
int ReplicasFor(uint64_t seed) {
  if (seed % 11 == 0) {
    return 4;
  }
  if (seed % 5 == 0) {
    return 3;
  }
  return 2;
}

ProgramFn FuzzWorkload(uint64_t seed, FuzzShape shape) {
  return [seed, shape](Guest& g) -> GuestTask<void> {
    GuestAddr pipe_fds = g.Alloc(8);
    co_await g.Pipe(pipe_fds);
    int prd = static_cast<int>(g.PeekU32(pipe_fds));
    int pwr = static_cast<int>(g.PeekU32(pipe_fds + 4));

    auto rank_body = [seed, shape, prd, pwr](int rank) -> ProgramFn {
      return [seed, shape, prd, pwr, rank](Guest& wg) -> GuestTask<void> {
        Rng rng(seed * 1000003 + static_cast<uint64_t>(rank));
        int64_t fd = co_await wg.Open("/tmp/fuzz-" + std::to_string(rank),
                                      kO_CREAT | kO_RDWR);
        GuestAddr buf = wg.Alloc(512);
        GuestAddr st = wg.Alloc(sizeof(GuestStat));
        for (int i = 0; i < shape.ops; ++i) {
          uint64_t op = rng.NextBelow(100);
          int64_t r = 0;
          if (op < 40) {  // Batchable: small regular-file append.
            uint64_t len = 16 + rng.NextBelow(200);
            r = co_await wg.Write(static_cast<int>(fd), buf, len);
          } else if (op < 55) {  // Batchable: metadata query.
            r = co_await wg.Fstat(static_cast<int>(fd), st);
          } else if (op < 65) {  // Base query (different policy class).
            r = co_await wg.Getpid();
          } else if (op < 80) {  // Blocking flush point: shared-pipe ping.
            // Each rank writes before it reads, so total reads never outrun total
            // writes and the cross-rank ping order is free to fuzz itself.
            wg.Poke(buf, "p", 1);
            co_await wg.Write(pwr, buf, 1);
            r = co_await wg.Read(prd, buf, 1);
          } else if (op < 90) {  // Local-call flush point: explicit sleep.
            r = co_await wg.SleepNs(Micros(1 + rng.NextBelow(20)));
          } else {  // Batchable read-back.
            r = co_await wg.Read(static_cast<int>(fd), buf, 64);
          }
          // Skewed compute shuffles which rank reaches the RB first.
          co_await wg.Compute(Micros(rng.NextBelow(25)));
          std::string line = "r" + std::to_string(rank) + "-op" + std::to_string(i) +
                             "=" + std::to_string(r) + ";";
          wg.Poke(buf, line.data(), line.size());
          co_await wg.Write(static_cast<int>(fd), buf, line.size());
        }
        co_await wg.Close(static_cast<int>(fd));
      };
    };

    GuestAddr join = g.Alloc(8);
    co_await g.Pipe(join);
    int join_rd = static_cast<int>(g.PeekU32(join));
    int join_wr = static_cast<int>(g.PeekU32(join + 4));
    for (int rank = 1; rank < shape.ranks; ++rank) {
      auto body = rank_body(rank);
      uint64_t fn = g.RegisterThreadFn([body, join_wr](Guest& wg) -> GuestTask<void> {
        co_await body(wg);
        GuestAddr d = wg.Alloc(1);
        wg.Poke(d, "D", 1);
        co_await wg.Write(join_wr, d, 1);
      });
      co_await g.SpawnThread(fn);
    }
    auto self = rank_body(0);
    co_await self(g);
    // Join with exactly one 1-byte read per worker: a variable-size read here
    // would make the main rank's syscall count depend on worker completion
    // timing, and the whole point is that batching may only change timing.
    GuestAddr sink = g.Alloc(4);
    for (int i = 0; i < shape.ranks - 1; ++i) {
      int64_t n = co_await g.Read(join_rd, sink, 1);
      REMON_CHECK(n == 1);
    }
  };
}

struct FuzzOutcome {
  bool ok = false;
  std::string transcript;     // Concatenated per-rank transcript files.
  uint64_t rb_entries = 0;    // RB stream shape: entry count ...
  uint64_t rb_bytes = 0;      // ... and total bytes must not depend on batching.
  uint64_t remote_deaths = 0;  // Links torn down (kill injection observed).
  uint64_t rejoins = 0;        // Snapshot joins completed (re-seed observed).
  uint64_t join_lockstep_cursor = 0;  // Checkpointed GHUMVEE cursor at last join.
  uint64_t lockstep_rounds = 0;       // Monitored rounds over the whole run.
  uint64_t delta_captures = 0;        // Re-seeds cut as O(delta) checkpoints.
  uint64_t full_fallbacks = 0;        // Delta requested but basis unusable.
  uint64_t migrations = 0;            // Replacements placed on a new machine.
  uint64_t snapshot_bytes = 0;        // Checkpoint bytes shipped over the wire.
  TimeNs end_time = 0;                // Virtual time at quiescence.
};

FuzzOutcome RunFuzz(uint64_t seed, FuzzShape shape, int replicas, int batch_max,
                    RbBatchPolicy policy, bool remote_last_replica = false,
                    TimeNs kill_remote_at = 0, bool disable_ready_lane = false,
                    bool rb_auth = false,
                    ReseedMode reseed_mode = ReseedMode::kDelta,
                    bool migrate_respawn = false) {
  SimWorld w(seed);
  if (disable_ready_lane) {
    // Forces zero-delay events onto the time heap (the pre-lane code shape); see
    // the ReadyLane determinism test below.
    w.sim.queue().set_ready_lane_enabled(false);
  }
  RemonOptions opts;
  opts.mode = MveeMode::kRemon;
  opts.replicas = replicas;
  opts.level = PolicyLevel::kNonsocketRw;
  opts.rb_auth = rb_auth;
  // A small RB (vs. the 16 MiB default) keeps 3000 hermetic worlds affordable and
  // lets long op streams wrap, folding reset rounds into the fuzzed interleavings.
  opts.rb_size = 256 * 1024;
  opts.max_ranks = 4;
  opts.rb_batch_max = batch_max;
  opts.rb_batch_policy = policy;
  if (remote_last_replica) {
    // Cross-machine variant: the last replica runs on its own machine, fed by the
    // RB transport instead of shared frames — the transcript must not notice.
    uint32_t host = w.net.AddMachine("replica-host-1");
    w.net.SetLink(w.server_machine, host, LinkParams{50 * kMicrosecond, 0.125});
    opts.machine = w.server_machine;
    opts.replica_machines.assign(static_cast<size_t>(replicas), w.server_machine);
    opts.replica_machines.back() = host;
  }
  if (kill_remote_at > 0) {
    // Kill-one-replica-mid-fuzz: the remote replica's link dies at the given
    // virtual time and a replacement is checkpoint-seeded back into the set.
    opts.respawn_dead_replicas = true;
    opts.reseed_mode = reseed_mode;
    if (migrate_respawn) {
      // Respawn-as-migration: the replacement lands on a fresh machine and its
      // join carries the new placement.
      uint32_t target = w.net.AddMachine("replica-host-2");
      w.net.SetLink(w.server_machine, target, LinkParams{50 * kMicrosecond, 0.125});
      opts.respawn_target_machine = static_cast<int>(target);
    }
  }
  Remon mvee(&w.kernel, opts);
  mvee.Launch(FuzzWorkload(seed, shape), "fuzz");
  if (kill_remote_at > 0) {
    int idx = replicas - 1;
    w.sim.queue().ScheduleAt(kill_remote_at, [&mvee, idx] {
      RemoteSyncAgent* agent = mvee.remote_agent(idx);
      if (agent != nullptr) {
        agent->Shutdown();
      }
    });
  }
  w.Run();
  FuzzOutcome out;
  out.ok = mvee.finished() && !mvee.divergence_detected();
  for (int rank = 0; rank < shape.ranks; ++rank) {
    out.transcript +=
        w.fs.ReadWholeFile("/tmp/fuzz-" + std::to_string(rank)).value_or("<missing>");
    out.transcript += "|";
  }
  out.rb_entries = w.sim.stats().rb_entries;
  out.rb_bytes = w.sim.stats().rb_bytes;
  out.remote_deaths = w.sim.stats().rb_remote_deaths;
  out.rejoins = w.sim.stats().rb_replica_joins;
  out.delta_captures = w.sim.stats().rb_snapshot_delta_captures;
  out.full_fallbacks = w.sim.stats().rb_snapshot_full_fallbacks;
  out.migrations = w.sim.stats().rb_replica_migrations;
  out.snapshot_bytes = w.sim.stats().rb_snapshot_bytes_sent;
  if (remote_last_replica && mvee.remote_agent(replicas - 1) != nullptr) {
    out.join_lockstep_cursor =
        mvee.remote_agent(replicas - 1)->last_join_lockstep_cursor();
  }
  if (mvee.ghumvee() != nullptr) {
    out.lockstep_rounds = mvee.ghumvee()->lockstep_rounds();
  }
  out.end_time = w.sim.now();
  return out;
}

// 1000 seeded interleavings (8 shards x 125 seeds), each run three ways: unbatched,
// fixed window, adaptive window. Batching may only change publication timing —
// the slave-visible results (transcripts) and the RB entry stream must be
// byte-identical.
class RandomizedLockstepTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomizedLockstepTest, BatchedMatchesUnbatchedUnderFuzzedInterleavings) {
  constexpr int kSeedsPerShard = 125;
  int shard = GetParam();
  for (int i = 0; i < kSeedsPerShard; ++i) {
    uint64_t seed = static_cast<uint64_t>(shard) * kSeedsPerShard + i + 1;
    FuzzShape shape = ShapeFor(seed);
    int replicas = ReplicasFor(seed);

    FuzzOutcome unbatched =
        RunFuzz(seed, shape, replicas, 0, RbBatchPolicy::kFixed);
    ASSERT_TRUE(unbatched.ok) << "seed " << seed;
    ASSERT_EQ(unbatched.transcript.find("<missing>"), std::string::npos)
        << "seed " << seed;

    FuzzOutcome fixed = RunFuzz(seed, shape, replicas, 4, RbBatchPolicy::kFixed);
    ASSERT_TRUE(fixed.ok) << "seed " << seed;
    ASSERT_EQ(unbatched.transcript, fixed.transcript) << "seed " << seed;
    ASSERT_EQ(unbatched.rb_entries, fixed.rb_entries) << "seed " << seed;
    ASSERT_EQ(unbatched.rb_bytes, fixed.rb_bytes) << "seed " << seed;

    FuzzOutcome adaptive =
        RunFuzz(seed, shape, replicas, 8, RbBatchPolicy::kAdaptive);
    ASSERT_TRUE(adaptive.ok) << "seed " << seed;
    ASSERT_EQ(unbatched.transcript, adaptive.transcript) << "seed " << seed;
    ASSERT_EQ(unbatched.rb_entries, adaptive.rb_entries) << "seed " << seed;
    ASSERT_EQ(unbatched.rb_bytes, adaptive.rb_bytes) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(ThousandSeeds, RandomizedLockstepTest, ::testing::Range(0, 8));

// Cross-machine lockstep: the same fuzzed multi-rank interleavings, with the last
// replica moved to its own machine behind the RB transport. The transport may only
// change *where* slaves read the stream from — the slave-visible results
// (transcripts) and the RB stream shape must stay byte-identical to the SHM
// placement, across batching policies, RB wraps, and blocking flush points.
TEST(RandomizedLockstepTest, RemoteRankMatchesShmUnderFuzzedInterleavings) {
  for (uint64_t seed : {3, 11, 25, 40, 77, 123, 200, 305, 404, 512, 700, 999}) {
    FuzzShape shape = ShapeFor(seed);

    FuzzOutcome shm = RunFuzz(seed, shape, 3, 8, RbBatchPolicy::kAdaptive);
    ASSERT_TRUE(shm.ok) << "seed " << seed;
    ASSERT_EQ(shm.transcript.find("<missing>"), std::string::npos) << "seed " << seed;

    FuzzOutcome remote = RunFuzz(seed, shape, 3, 8, RbBatchPolicy::kAdaptive,
                                 /*remote_last_replica=*/true);
    ASSERT_TRUE(remote.ok) << "seed " << seed;
    ASSERT_EQ(shm.transcript, remote.transcript) << "seed " << seed;
    ASSERT_EQ(shm.rb_entries, remote.rb_entries) << "seed " << seed;
    ASSERT_EQ(shm.rb_bytes, remote.rb_bytes) << "seed " << seed;

    // Unbatched remote placement must agree too (eager per-entry frames).
    FuzzOutcome eager = RunFuzz(seed, shape, 3, 0, RbBatchPolicy::kFixed,
                                /*remote_last_replica=*/true);
    ASSERT_TRUE(eager.ok) << "seed " << seed;
    ASSERT_EQ(shm.transcript, eager.transcript) << "seed " << seed;
    ASSERT_EQ(shm.rb_entries, eager.rb_entries) << "seed " << seed;
  }
}

// Wire-v4 authentication is a pure transport-layer change: MAC trailers and
// stream encryption may only alter the bytes on the simulated socket, never what
// the replicas compute. Every auth run must be byte-identical to its
// unauthenticated twin — transcripts and the RB stream shape — including through
// a mid-run kill + attested re-seed.
TEST(RandomizedLockstepTest, AuthenticatedRemoteMatchesUnauthenticated) {
  for (uint64_t seed : {3, 25, 77, 200, 404, 700}) {
    FuzzShape shape = ShapeFor(seed);

    FuzzOutcome plain = RunFuzz(seed, shape, 3, 8, RbBatchPolicy::kAdaptive,
                                /*remote_last_replica=*/true);
    ASSERT_TRUE(plain.ok) << "seed " << seed;
    ASSERT_EQ(plain.transcript.find("<missing>"), std::string::npos) << "seed " << seed;

    FuzzOutcome auth = RunFuzz(seed, shape, 3, 8, RbBatchPolicy::kAdaptive,
                               /*remote_last_replica=*/true, /*kill_remote_at=*/0,
                               /*disable_ready_lane=*/false, /*rb_auth=*/true);
    ASSERT_TRUE(auth.ok) << "seed " << seed;
    ASSERT_EQ(plain.transcript, auth.transcript) << "seed " << seed;
    ASSERT_EQ(plain.rb_entries, auth.rb_entries) << "seed " << seed;
    ASSERT_EQ(plain.rb_bytes, auth.rb_bytes) << "seed " << seed;
  }
  // Kill + attested re-seed: epoch bump rotates the session keys mid-run and the
  // replacement joins through the attest handshake — still byte-identical.
  int exercised = 0;
  for (uint64_t seed : {19, 131, 333}) {
    FuzzShape shape = ShapeFor(seed);
    shape.ops += 24;
    FuzzOutcome plain = RunFuzz(seed, shape, 3, 8, RbBatchPolicy::kAdaptive,
                                /*remote_last_replica=*/true);
    ASSERT_TRUE(plain.ok) << "seed " << seed;
    FuzzOutcome auth = RunFuzz(seed, shape, 3, 8, RbBatchPolicy::kAdaptive,
                               /*remote_last_replica=*/true,
                               /*kill_remote_at=*/Micros(120),
                               /*disable_ready_lane=*/false, /*rb_auth=*/true);
    ASSERT_TRUE(auth.ok) << "seed " << seed;
    ASSERT_EQ(plain.transcript, auth.transcript) << "seed " << seed;
    ASSERT_EQ(plain.rb_entries, auth.rb_entries) << "seed " << seed;
    if (auth.remote_deaths > 0 && auth.rejoins > 0) {
      ++exercised;
    }
  }
  EXPECT_GE(exercised, 2);  // The attested re-seed path must actually run.
}

// Scheduler fast-path determinism: the event queue's zero-delay ready lane is a
// pure mechanism change. Draining ready-lane events merge-popped against the time
// heap must reproduce the exact (when, seq) tie-break order the pure-heap path
// produces — so a fuzzed multi-rank lockstep run (zero-delay events everywhere:
// wake bounces, root-finish deferral, RB publication hops) must be byte-identical
// with the lane disabled, down to the virtual clock at quiescence.
// event_queue.h points at this test by name; keep it in sync.
TEST(RandomizedLockstepTest, ReadyLaneMatchesPureHeapUnderFuzzedInterleavings) {
  for (uint64_t seed : {2, 7, 13, 29, 58, 101, 222, 350, 480, 640, 808, 997}) {
    FuzzShape shape = ShapeFor(seed);
    int replicas = ReplicasFor(seed);

    FuzzOutcome lane = RunFuzz(seed, shape, replicas, 8, RbBatchPolicy::kAdaptive);
    ASSERT_TRUE(lane.ok) << "seed " << seed;
    ASSERT_EQ(lane.transcript.find("<missing>"), std::string::npos)
        << "seed " << seed;

    FuzzOutcome heap = RunFuzz(seed, shape, replicas, 8, RbBatchPolicy::kAdaptive,
                               /*remote_last_replica=*/false, /*kill_remote_at=*/0,
                               /*disable_ready_lane=*/true);
    ASSERT_TRUE(heap.ok) << "seed " << seed;
    ASSERT_EQ(lane.transcript, heap.transcript) << "seed " << seed;
    ASSERT_EQ(lane.rb_entries, heap.rb_entries) << "seed " << seed;
    ASSERT_EQ(lane.rb_bytes, heap.rb_bytes) << "seed " << seed;
    ASSERT_EQ(lane.lockstep_rounds, heap.lockstep_rounds) << "seed " << seed;
    ASSERT_EQ(lane.end_time, heap.end_time) << "seed " << seed;
  }
}

// Kill-one-replica-mid-fuzz re-seed: tearing the remote replica's link down
// mid-run and checkpoint-seeding a replacement back into the set must yield a
// transcript byte-identical to the uninterrupted run — the replica set survives
// replica loss with no observable effect (acceptance bar for the recovery path).
TEST(RandomizedLockstepTest, ReseedAfterMidRunReplicaDeathMatchesUninterrupted) {
  int exercised = 0;
  for (uint64_t seed : {5, 19, 33, 47, 88, 131, 212, 333, 421, 555, 777, 901}) {
    FuzzShape shape = ShapeFor(seed);
    shape.ops += 24;  // Long enough that the kill always lands mid-run.

    FuzzOutcome uninterrupted = RunFuzz(seed, shape, 3, 8, RbBatchPolicy::kAdaptive,
                                        /*remote_last_replica=*/true);
    ASSERT_TRUE(uninterrupted.ok) << "seed " << seed;
    ASSERT_EQ(uninterrupted.transcript.find("<missing>"), std::string::npos)
        << "seed " << seed;

    FuzzOutcome reseeded = RunFuzz(seed, shape, 3, 8, RbBatchPolicy::kAdaptive,
                                   /*remote_last_replica=*/true,
                                   /*kill_remote_at=*/Micros(120));
    ASSERT_TRUE(reseeded.ok) << "seed " << seed;
    ASSERT_EQ(uninterrupted.transcript, reseeded.transcript) << "seed " << seed;
    ASSERT_EQ(uninterrupted.rb_entries, reseeded.rb_entries) << "seed " << seed;
    ASSERT_EQ(uninterrupted.rb_bytes, reseeded.rb_bytes) << "seed " << seed;

    if (reseeded.remote_deaths > 0) {
      ++exercised;
      ASSERT_GE(reseeded.rejoins, 1u) << "seed " << seed;
      // The replacement resumed from a checkpointed lockstep cursor no later than
      // the run's final monitored round.
      EXPECT_LE(reseeded.join_lockstep_cursor, reseeded.lockstep_rounds)
          << "seed " << seed;
    }
  }
  // The kill must actually have landed mid-run for (at least) 10 of the 12 seeds —
  // a kill after the workload finished would make this test vacuous.
  EXPECT_GE(exercised, 10);
}

// The unbatched (eager per-entry frame) configuration must survive re-seed too:
// the snapshot path may not depend on batching's flush points.
TEST(RandomizedLockstepTest, ReseedWorksUnbatched) {
  for (uint64_t seed : {7, 42, 1337}) {
    FuzzShape shape = ShapeFor(seed);
    shape.ops += 24;
    FuzzOutcome base = RunFuzz(seed, shape, 3, 0, RbBatchPolicy::kFixed,
                               /*remote_last_replica=*/true);
    ASSERT_TRUE(base.ok) << "seed " << seed;
    FuzzOutcome reseeded = RunFuzz(seed, shape, 3, 0, RbBatchPolicy::kFixed,
                                   /*remote_last_replica=*/true,
                                   /*kill_remote_at=*/Micros(120));
    ASSERT_TRUE(reseeded.ok) << "seed " << seed;
    ASSERT_EQ(base.transcript, reseeded.transcript) << "seed " << seed;
    ASSERT_EQ(base.rb_entries, reseeded.rb_entries) << "seed " << seed;
  }
}

// Re-seed mode matrix: the same kill-one fuzz run under --reseed=delta,
// --reseed=full, and delta with the replacement migrated to a brand-new machine.
// The mode (and the placement) may only change what travels in the checkpoint —
// every variant's transcript and RB stream must be byte-identical to the
// never-died run.
TEST(RandomizedLockstepTest, ReseedDeltaFullAndMigrationMatchUninterrupted) {
  int exercised = 0;
  uint64_t delta_used = 0;
  for (uint64_t seed : {5, 47, 131, 333, 777, 901}) {
    FuzzShape shape = ShapeFor(seed);
    shape.ops += 24;

    FuzzOutcome uninterrupted = RunFuzz(seed, shape, 3, 8, RbBatchPolicy::kAdaptive,
                                        /*remote_last_replica=*/true);
    ASSERT_TRUE(uninterrupted.ok) << "seed " << seed;
    ASSERT_EQ(uninterrupted.transcript.find("<missing>"), std::string::npos)
        << "seed " << seed;

    FuzzOutcome delta = RunFuzz(seed, shape, 3, 8, RbBatchPolicy::kAdaptive,
                                /*remote_last_replica=*/true,
                                /*kill_remote_at=*/Micros(120),
                                /*disable_ready_lane=*/false, /*rb_auth=*/false,
                                ReseedMode::kDelta);
    ASSERT_TRUE(delta.ok) << "seed " << seed;
    ASSERT_EQ(uninterrupted.transcript, delta.transcript) << "seed " << seed;
    ASSERT_EQ(uninterrupted.rb_entries, delta.rb_entries) << "seed " << seed;

    FuzzOutcome full = RunFuzz(seed, shape, 3, 8, RbBatchPolicy::kAdaptive,
                               /*remote_last_replica=*/true,
                               /*kill_remote_at=*/Micros(120),
                               /*disable_ready_lane=*/false, /*rb_auth=*/false,
                               ReseedMode::kFull);
    ASSERT_TRUE(full.ok) << "seed " << seed;
    ASSERT_EQ(uninterrupted.transcript, full.transcript) << "seed " << seed;
    ASSERT_EQ(uninterrupted.rb_entries, full.rb_entries) << "seed " << seed;
    // kFull must never take the delta path (that's the ablation contract).
    ASSERT_EQ(full.delta_captures, 0u) << "seed " << seed;

    FuzzOutcome migrated = RunFuzz(seed, shape, 3, 8, RbBatchPolicy::kAdaptive,
                                   /*remote_last_replica=*/true,
                                   /*kill_remote_at=*/Micros(120),
                                   /*disable_ready_lane=*/false, /*rb_auth=*/false,
                                   ReseedMode::kDelta, /*migrate_respawn=*/true);
    ASSERT_TRUE(migrated.ok) << "seed " << seed;
    ASSERT_EQ(uninterrupted.transcript, migrated.transcript) << "seed " << seed;
    ASSERT_EQ(uninterrupted.rb_entries, migrated.rb_entries) << "seed " << seed;

    if (delta.remote_deaths > 0 && delta.rejoins > 0) {
      ++exercised;
      // Every re-seed decided delta-vs-fallback explicitly.
      ASSERT_GE(delta.delta_captures + delta.full_fallbacks, 1u) << "seed " << seed;
      delta_used += delta.delta_captures;
      // A delta checkpoint never costs meaningfully more wire than the full
      // re-ship: in the worst case (nothing acked yet) it degenerates to the
      // full window plus its per-rank resume records. The flat-vs-linear curve
      // across RB sizes is the bench suite's claim (bench_abl_rb reseed_delta).
      if (delta.delta_captures > 0 && delta.full_fallbacks == 0) {
        EXPECT_LE(delta.snapshot_bytes, full.snapshot_bytes + 1024)
            << "seed " << seed;
      }
    }
    if (migrated.remote_deaths > 0 && migrated.rejoins > 0) {
      // The replacement landed on the new machine, counted as a migration.
      ASSERT_GE(migrated.migrations, 1u) << "seed " << seed;
    }
  }
  EXPECT_GE(exercised, 5);    // The kill must land mid-run for most seeds.
  EXPECT_GE(delta_used, 1u);  // And the O(delta) path must actually run.
}

// Attested variant: migration under rb_auth — the replacement's kJoinAttest
// carries the new placement, and the leader only seeds it after verifying the
// attested machine against the one it commanded.
TEST(RandomizedLockstepTest, AttestedMigrationMatchesUninterrupted) {
  int exercised = 0;
  for (uint64_t seed : {19, 131, 333}) {
    FuzzShape shape = ShapeFor(seed);
    shape.ops += 24;
    FuzzOutcome plain = RunFuzz(seed, shape, 3, 8, RbBatchPolicy::kAdaptive,
                                /*remote_last_replica=*/true);
    ASSERT_TRUE(plain.ok) << "seed " << seed;
    FuzzOutcome migrated = RunFuzz(seed, shape, 3, 8, RbBatchPolicy::kAdaptive,
                                   /*remote_last_replica=*/true,
                                   /*kill_remote_at=*/Micros(120),
                                   /*disable_ready_lane=*/false, /*rb_auth=*/true,
                                   ReseedMode::kDelta, /*migrate_respawn=*/true);
    ASSERT_TRUE(migrated.ok) << "seed " << seed;
    ASSERT_EQ(plain.transcript, migrated.transcript) << "seed " << seed;
    ASSERT_EQ(plain.rb_entries, migrated.rb_entries) << "seed " << seed;
    if (migrated.remote_deaths > 0 && migrated.rejoins > 0) {
      ++exercised;
      ASSERT_GE(migrated.migrations, 1u) << "seed " << seed;
    }
  }
  EXPECT_GE(exercised, 2);
}

// Respawn-budget decay: deaths spaced farther apart than the decay interval
// refund their attempts, so a long-lived set survives any number of sporadic
// recoverable deaths; with decay disabled the same kill schedule exhausts the
// lifetime cap and ends in a divergence report. This is the regression test for
// the lifetime-cap bug.
struct BudgetOutcome {
  bool finished = false;
  bool diverged = false;
  uint64_t deaths = 0;
  uint64_t respawns = 0;
};

BudgetOutcome RunRespawnBudget(uint64_t seed, DurationNs decay,
                               const std::vector<TimeNs>& kill_times) {
  SimWorld w(seed);
  FuzzShape shape = ShapeFor(seed);
  shape.ops += 150;  // Long enough that every scheduled kill lands mid-run.
  RemonOptions opts;
  opts.mode = MveeMode::kRemon;
  opts.replicas = 3;
  opts.level = PolicyLevel::kNonsocketRw;
  opts.rb_size = 256 * 1024;
  opts.max_ranks = 4;
  opts.rb_batch_max = 8;
  opts.rb_batch_policy = RbBatchPolicy::kAdaptive;
  uint32_t host = w.net.AddMachine("replica-host-1");
  w.net.SetLink(w.server_machine, host, LinkParams{50 * kMicrosecond, 0.125});
  opts.machine = w.server_machine;
  opts.replica_machines.assign(3, w.server_machine);
  opts.replica_machines.back() = host;
  opts.respawn_dead_replicas = true;
  opts.max_respawns_per_replica = 1;  // One death per decay interval allowed.
  opts.respawn_budget_decay = decay;
  Remon mvee(&w.kernel, opts);
  mvee.Launch(FuzzWorkload(seed, shape), "fuzz");
  for (TimeNs t : kill_times) {
    w.sim.queue().ScheduleAt(t, [&mvee] {
      RemoteSyncAgent* agent = mvee.remote_agent(2);
      if (agent != nullptr) {
        agent->Shutdown();
      }
    });
  }
  w.Run();
  BudgetOutcome out;
  out.finished = mvee.finished();
  out.diverged = mvee.divergence_detected();
  out.deaths = w.sim.stats().rb_remote_deaths;
  out.respawns = mvee.respawns();
  return out;
}

TEST(RandomizedLockstepTest, RespawnBudgetDecaysOverHealthyIntervals) {
  // Three kills, each spaced well past the decay interval: every attempt has
  // been refunded by the time the next death arrives, so a cap of 1 survives
  // all three.
  const std::vector<TimeNs> kills = {Micros(120), Micros(620), Micros(1120)};
  BudgetOutcome decayed = RunRespawnBudget(5, /*decay=*/Micros(300), kills);
  EXPECT_TRUE(decayed.finished);
  EXPECT_FALSE(decayed.diverged);
  ASSERT_GE(decayed.deaths, 3u);  // All kills must land while the set is live.
  EXPECT_GE(decayed.respawns, 3u);

  // Same schedule with decay disabled: the cap is a lifetime cap again, the
  // second death exceeds it, and the run ends in a divergence report.
  BudgetOutcome capped = RunRespawnBudget(5, /*decay=*/0, kills);
  EXPECT_TRUE(capped.diverged);
  EXPECT_LE(capped.respawns, 1u);
}

// Reset/re-seed interlock: an RB reset round that fires while a replacement
// checkpoint is still in flight would rebase every offset the image was cut
// against — the replacement then refuses the stale-generation checkpoint, the
// link tears, and the leader's own reset ends up charged to the respawn budget
// (the 1 MiB divergence cliff). GHUMVEE now parks the flush round until the
// checkpoint acks, so a kill loop riding across reset rounds must recover every
// time with a byte-identical transcript.
struct ResetRaceOutcome {
  bool finished = false;
  bool diverged = false;
  std::string transcript;
  uint64_t deaths = 0;
  uint64_t rejoins = 0;
  uint64_t stalls = 0;  // Flush rounds the gate parked (rb_reset_join_stalls).
};

ResetRaceOutcome RunResetJoinRace(uint64_t seed,
                                  const std::vector<TimeNs>& kill_times) {
  SimWorld w(seed);
  FuzzShape shape = ShapeFor(seed);
  shape.ops += 300;  // Long op streams wrap the RB: reset rounds under the kills.
  RemonOptions opts;
  opts.mode = MveeMode::kRemon;
  opts.replicas = 3;
  opts.level = PolicyLevel::kNonsocketRw;
  // A quarter of the fuzz default: sub-buffers wrap every few hundred ops, so
  // reset rounds land inside the checkpoint-transfer windows the kills open.
  opts.rb_size = 64 * 1024;
  opts.max_ranks = 4;
  opts.rb_batch_max = 8;
  opts.rb_batch_policy = RbBatchPolicy::kAdaptive;
  uint32_t host = w.net.AddMachine("replica-host-1");
  w.net.SetLink(w.server_machine, host, LinkParams{50 * kMicrosecond, 0.125});
  opts.machine = w.server_machine;
  opts.replica_machines.assign(3, w.server_machine);
  opts.replica_machines.back() = host;
  opts.respawn_dead_replicas = true;
  opts.reseed_mode = ReseedMode::kDelta;
  // Deaths arrive faster than recoveries complete; a fast refund keeps the
  // budget solvent so every divergence the test could see is a join failure.
  opts.respawn_budget_decay = Micros(100);
  Remon mvee(&w.kernel, opts);
  mvee.Launch(FuzzWorkload(seed, shape), "fuzz");
  for (TimeNs t : kill_times) {
    w.sim.queue().ScheduleAt(t, [&mvee] {
      RemoteSyncAgent* agent = mvee.remote_agent(2);
      if (agent != nullptr) {
        agent->Shutdown();
      }
    });
  }
  w.Run();
  ResetRaceOutcome out;
  out.finished = mvee.finished();
  out.diverged = mvee.divergence_detected();
  for (int rank = 0; rank < shape.ranks; ++rank) {
    out.transcript +=
        w.fs.ReadWholeFile("/tmp/fuzz-" + std::to_string(rank)).value_or("<missing>");
    out.transcript += "|";
  }
  out.deaths = w.sim.stats().rb_remote_deaths;
  out.rejoins = w.sim.stats().rb_replica_joins;
  out.stalls = w.sim.stats().rb_reset_join_stalls;
  return out;
}

TEST(RandomizedLockstepTest, ResetRoundParksOnInflightReseed) {
  uint64_t total_stalls = 0;
  int exercised = 0;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    ResetRaceOutcome plain = RunResetJoinRace(seed, {});
    ASSERT_TRUE(plain.finished) << "seed " << seed;
    ASSERT_FALSE(plain.diverged) << "seed " << seed;
    // Spaced so each join completes before the next kill (recovery is ~300 us),
    // and dense across the run so transfer windows ride over reset rounds.
    std::vector<TimeNs> kills;
    for (int k = 0; k < 16; ++k) {
      kills.push_back(Micros(100) + k * Micros(750));
    }
    ResetRaceOutcome raced = RunResetJoinRace(seed, kills);
    EXPECT_TRUE(raced.finished) << "seed " << seed;
    EXPECT_FALSE(raced.diverged) << "seed " << seed;
    EXPECT_EQ(plain.transcript, raced.transcript) << "seed " << seed;
    total_stalls += raced.stalls;
    if (raced.deaths > 0 && raced.rejoins > 0) {
      ++exercised;
    }
  }
  EXPECT_GE(exercised, 3);
  // The race itself must have been exercised: at least one flush round parked
  // on an in-flight checkpoint somewhere across the seed sweep.
  EXPECT_GE(total_stalls, 1u);
}

// --- Cross-machine multi-threaded lockstep: sync-agent log transport ----------------

// One fuzzed multi-threaded sync workload. A deterministic global schedule fixes
// which (rank, object) acquires synchronization op k — the workload gates each
// acquisition on a shared turn word, so the master's acquisition order is pinned
// by construction and byte-comparisons across placements are meaningful — while
// everything else fuzzes: filler writes, metadata queries, sleep-poll intervals,
// and compute bursts shuffle the batching, streaming, and wrap timing. The
// guarded shared-counter pop feeds each transcript line (and the line's write
// length), so a replica replaying the log wrongly diverges immediately; the tiny
// 16-slot log wraps several times per run, exercising the circular-log gate over
// the network. Note the turn gate serializes ops but not their replication: a
// remote slave's BeforeAcquire still blocks until the master's kSyncLog frames
// reach its mirror — liveness across the link is exactly what is under test.
struct SyncOp {
  int rank = 0;
  uint32_t object = 0;
};

std::vector<SyncOp> SyncScheduleFor(uint64_t seed, FuzzShape shape) {
  Rng rng(seed * 0x51ab3 + 7);
  std::vector<SyncOp> schedule;
  for (int r = 0; r < shape.ranks; ++r) {
    for (int i = 0; i < shape.ops; ++i) {
      schedule.push_back(SyncOp{r, static_cast<uint32_t>(1 + rng.NextBelow(40))});
    }
  }
  for (size_t i = schedule.size(); i > 1; --i) {  // Fisher-Yates.
    std::swap(schedule[i - 1], schedule[rng.NextBelow(i)]);
  }
  return schedule;
}

ProgramFn SyncFuzzWorkload(uint64_t seed, FuzzShape shape, std::vector<SyncOp> schedule) {
  return [seed, shape, schedule](Guest& g) -> GuestTask<void> {
    GuestAddr turn = g.Alloc(4);
    GuestAddr pool = g.Alloc(4);
    g.PokeU32(turn, 0);
    g.PokeU32(pool, 0);

    auto rank_body = [seed, schedule, turn, pool](int rank) -> ProgramFn {
      return [seed, schedule, turn, pool, rank](Guest& wg) -> GuestTask<void> {
        SyncAgent* agent = wg.process()->sync_agent;
        REMON_CHECK(agent != nullptr);
        Rng rng(seed * 777 + static_cast<uint64_t>(rank));
        // Sleep-poll intervals come from their own stream: the number of poll
        // iterations is timing-dependent and differs across replicas, and a
        // divergent draw count must never leak into replicated syscall arguments
        // (nanosleep itself is a local call, so the durations may differ freely).
        Rng poll_rng(seed * 13577 + static_cast<uint64_t>(rank) * 31 + 1);
        int64_t fd = co_await wg.Open("/tmp/syncfuzz-" + std::to_string(rank),
                                      kO_CREAT | kO_RDWR);
        GuestAddr buf = wg.Alloc(2048);
        GuestAddr st = wg.Alloc(sizeof(GuestStat));
        // The middle third of the schedule is a syscall-free burst window: lines
        // defer into a local buffer and no filler runs, so sync ops stream with
        // no RB traffic between them. Replicated calls throttle the master to
        // the link's ack pace; only such a burst can outrun a slow remote by a
        // full lap of the circular log and land the master on the wraparound
        // gate. The window is k-based, hence identical in every replica.
        size_t burst_lo = schedule.size() / 3;
        size_t burst_hi = 2 * schedule.size() / 3;
        std::string deferred;
        for (size_t k = 0; k < schedule.size(); ++k) {
          if (schedule[k].rank != rank) {
            continue;
          }
          bool burst = k >= burst_lo && k < burst_hi;
          // Fuzzed rank-private filler (batchable unmonitored calls). The draws
          // happen unconditionally so the op-rng stream stays aligned across
          // burst boundaries.
          uint64_t filler_len = 16 + rng.NextBelow(150);
          bool filler_write = rng.NextBelow(100) < 40;
          bool filler_stat = rng.NextBelow(100) < 20;
          if (!burst && filler_write) {
            co_await wg.Write(static_cast<int>(fd), buf, filler_len);
          }
          if (!burst && filler_stat) {
            co_await wg.Fstat(static_cast<int>(fd), st);
          }
          // Wait for the pinned global turn, then pop under the agent's order.
          while (wg.PeekU32(turn) != static_cast<uint32_t>(k)) {
            co_await wg.SleepNs(Micros(5 + poll_rng.NextBelow(40)));
          }
          co_await agent->BeforeAcquire(wg, schedule[k].object);
          uint32_t v = wg.PeekU32(pool);  // The racy shared pop.
          wg.PokeU32(pool, v + 1);
          REMON_CHECK(v == static_cast<uint32_t>(k));
          wg.PokeU32(turn, static_cast<uint32_t>(k + 1));
          deferred += "r" + std::to_string(rank) + "k" + std::to_string(k) + "o" +
                      std::to_string(schedule[k].object) + "v" + std::to_string(v) +
                      ";";
          if (!burst || deferred.size() > 1800) {
            wg.Poke(buf, deferred.data(), deferred.size());
            co_await wg.Write(static_cast<int>(fd), buf, deferred.size());
            deferred.clear();
          }
          co_await wg.Compute(Micros(rng.NextBelow(30)));
        }
        if (!deferred.empty()) {
          wg.Poke(buf, deferred.data(), deferred.size());
          co_await wg.Write(static_cast<int>(fd), buf, deferred.size());
        }
        co_await wg.Close(static_cast<int>(fd));
      };
    };

    GuestAddr join = g.Alloc(8);
    co_await g.Pipe(join);
    int join_rd = static_cast<int>(g.PeekU32(join));
    int join_wr = static_cast<int>(g.PeekU32(join + 4));
    for (int rank = 1; rank < shape.ranks; ++rank) {
      auto body = rank_body(rank);
      uint64_t fn = g.RegisterThreadFn([body, join_wr](Guest& wg) -> GuestTask<void> {
        co_await body(wg);
        GuestAddr d = wg.Alloc(1);
        wg.Poke(d, "D", 1);
        co_await wg.Write(join_wr, d, 1);
      });
      co_await g.SpawnThread(fn);
    }
    auto self = rank_body(0);
    co_await self(g);
    GuestAddr sink = g.Alloc(4);
    for (int i = 0; i < shape.ranks - 1; ++i) {
      int64_t n = co_await g.Read(join_rd, sink, 1);
      REMON_CHECK(n == 1);
    }
  };
}

struct SyncFuzzOutcome {
  bool ok = false;
  std::string transcript;        // Concatenated per-rank transcript files.
  uint64_t rb_entries = 0;
  uint64_t rb_bytes = 0;
  uint64_t ops_recorded = 0;     // Master log appends.
  uint64_t ops_replayed = 0;     // Sum over slaves.
  uint64_t wrap_stalls = 0;      // Master appends parked on the full circular log.
  uint64_t sync_frames_applied = 0;  // kSyncLog frames replayed into mirrors.
  uint64_t remote_deaths = 0;
  uint64_t rejoins = 0;
  uint64_t master_tail = 0;      // Absolute sync ops published by the master.
  uint64_t remote_tail = 0;      // The remote replica's mirror tail at run end.
  std::vector<uint8_t> master_log;   // Occupied-slot image of the master's log.
  std::vector<uint8_t> remote_log;   // Same for the remote replica's mirror.
};

// A 16-slot sync log: every fuzzed schedule wraps it several times.
constexpr uint64_t kSyncFuzzLogSize = kSyncLogOffEntries + 16 * kSyncLogEntrySize;

SyncFuzzOutcome RunSyncFuzz(
    uint64_t seed, FuzzShape shape, int replicas, int batch_max, RbBatchPolicy policy,
    bool remote_last_replica = false, TimeNs kill_remote_at = 0,
    const std::function<void(Remon&, SimWorld&)>& post_run = nullptr,
    DurationNs link_latency = 50 * kMicrosecond, int max_inflight_frames = 8,
    bool rb_auth = false) {
  SimWorld w(seed);
  RemonOptions opts;
  opts.mode = MveeMode::kRemon;
  opts.replicas = replicas;
  opts.level = PolicyLevel::kNonsocketRw;
  opts.rb_auth = rb_auth;
  opts.rb_size = 256 * 1024;
  opts.max_ranks = 4;
  opts.rb_batch_max = batch_max;
  opts.rb_batch_policy = policy;
  opts.use_sync_agent = true;
  opts.sync_log_size = kSyncFuzzLogSize;
  opts.rb_max_inflight_frames = max_inflight_frames;
  if (remote_last_replica) {
    uint32_t host = w.net.AddMachine("replica-host-1");
    w.net.SetLink(w.server_machine, host, LinkParams{link_latency, 0.125});
    opts.machine = w.server_machine;
    opts.replica_machines.assign(static_cast<size_t>(replicas), w.server_machine);
    opts.replica_machines.back() = host;
  }
  if (kill_remote_at > 0) {
    opts.respawn_dead_replicas = true;
  }
  Remon mvee(&w.kernel, opts);
  mvee.Launch(SyncFuzzWorkload(seed, shape, SyncScheduleFor(seed, shape)), "syncfuzz");
  if (kill_remote_at > 0) {
    int idx = replicas - 1;
    w.sim.queue().ScheduleAt(kill_remote_at, [&mvee, idx] {
      RemoteSyncAgent* agent = mvee.remote_agent(idx);
      if (agent != nullptr) {
        agent->Shutdown();
      }
    });
  }
  w.Run();
  SyncFuzzOutcome out;
  out.ok = mvee.finished() && !mvee.divergence_detected();
  for (int rank = 0; rank < shape.ranks; ++rank) {
    out.transcript +=
        w.fs.ReadWholeFile("/tmp/syncfuzz-" + std::to_string(rank)).value_or("<missing>");
    out.transcript += "|";
  }
  const SimStats& stats = w.sim.stats();
  out.rb_entries = stats.rb_entries;
  out.rb_bytes = stats.rb_bytes;
  out.ops_recorded = stats.sync_ops_recorded;
  out.ops_replayed = stats.sync_ops_replayed;
  out.wrap_stalls = stats.sync_log_wrap_stalls;
  out.sync_frames_applied = stats.sync_log_frames_applied;
  out.remote_deaths = stats.rb_remote_deaths;
  out.rejoins = stats.rb_replica_joins;
  if (mvee.sync_agent(0) != nullptr && mvee.sync_agent(0)->log_valid()) {
    out.master_tail = mvee.sync_agent(0)->tail();
    out.master_log = mvee.sync_agent(0)->CaptureLogImage();
  }
  if (remote_last_replica) {
    SyncAgent* remote = mvee.sync_agent(replicas - 1);
    if (remote != nullptr && remote->log_valid()) {
      out.remote_tail = remote->tail();
      out.remote_log = remote->CaptureLogImage();
    }
  }
  if (post_run) {
    post_run(mvee, w);
  }
  return out;
}

// 12-seed multi-threaded cross-machine lockstep fuzz: moving a replica behind the
// RB transport may change only *where* it reads the replication and sync-log
// streams from. Transcripts, the RB stream shape, and the sync log itself must be
// byte-identical to the all-local placement — and within the remote run, the
// remote mirror must be a byte-identical copy of the master's log.
TEST(SyncLockstepTest, RemoteMultithreadedMatchesShmUnderFuzzedSchedules) {
  uint64_t total_wrap_stalls = 0;
  int wrapped_seeds = 0;
  for (uint64_t seed : {3, 11, 25, 40, 77, 123, 200, 305, 404, 512, 700, 999}) {
    FuzzShape shape = ShapeFor(seed);

    SyncFuzzOutcome local =
        RunSyncFuzz(seed, shape, ReplicasFor(seed), 8, RbBatchPolicy::kAdaptive);
    ASSERT_TRUE(local.ok) << "seed " << seed;
    ASSERT_EQ(local.transcript.find("<missing>"), std::string::npos) << "seed " << seed;
    ASSERT_EQ(local.ops_recorded, static_cast<uint64_t>(shape.ranks) * shape.ops)
        << "seed " << seed;

    SyncFuzzOutcome remote = RunSyncFuzz(seed, shape, ReplicasFor(seed), 8,
                                         RbBatchPolicy::kAdaptive,
                                         /*remote_last_replica=*/true);
    ASSERT_TRUE(remote.ok) << "seed " << seed;
    ASSERT_EQ(local.transcript, remote.transcript) << "seed " << seed;
    ASSERT_EQ(local.rb_entries, remote.rb_entries) << "seed " << seed;
    ASSERT_EQ(local.rb_bytes, remote.rb_bytes) << "seed " << seed;
    ASSERT_EQ(local.master_tail, remote.master_tail) << "seed " << seed;
    ASSERT_EQ(local.master_log, remote.master_log) << "seed " << seed;

    // Transport correctness within the remote run: the mirror IS the log.
    ASSERT_EQ(remote.remote_tail, remote.master_tail) << "seed " << seed;
    ASSERT_EQ(remote.remote_log, remote.master_log) << "seed " << seed;
    ASSERT_GT(remote.sync_frames_applied, 0u) << "seed " << seed;
    // Every slave replayed the full schedule.
    ASSERT_EQ(remote.ops_replayed,
              static_cast<uint64_t>(ReplicasFor(seed) - 1) * remote.ops_recorded)
        << "seed " << seed;

    // The 16-slot log wrapped whenever the schedule outgrew it (slot reuse is
    // verified by the slave-side seq check on every consume); whether the master
    // additionally had to park on the gate is timing-dependent per seed, so the
    // stall counter is asserted over the whole sweep below.
    if (static_cast<uint64_t>(shape.ranks) * shape.ops > 16) {
      ++wrapped_seeds;
      ASSERT_GT(remote.master_tail, 16u) << "seed " << seed;
    }
    total_wrap_stalls += remote.wrap_stalls;

    // Unbatched (eager one-frame-per-append streaming) must agree too.
    SyncFuzzOutcome eager = RunSyncFuzz(seed, shape, ReplicasFor(seed), 0,
                                        RbBatchPolicy::kFixed,
                                        /*remote_last_replica=*/true);
    ASSERT_TRUE(eager.ok) << "seed " << seed;
    ASSERT_EQ(local.transcript, eager.transcript) << "seed " << seed;
    ASSERT_EQ(local.master_log, eager.master_log) << "seed " << seed;
  }
  EXPECT_GT(wrapped_seeds, 6);  // Most fuzzed schedules outgrow the 16-slot log.
  (void)total_wrap_stalls;  // On the fast link the slave lag stays under one lap.
}

// On a slow link with a deep in-flight budget, the remote replica's replay lag
// exceeds a full lap of the 16-slot log, so the master MUST park on the
// wraparound gate (overwriting an unconsumed slot would corrupt the remote's
// replay) — and the run must still finish byte-identically: the gate's
// flush-before-park keeps the stream live while the master sleeps. (With the
// default shallow in-flight budget the transport backpressure throttles the
// master below one lap of lag first — also asserted, as the two gates must
// compose rather than fight.)
TEST(SyncLockstepTest, SlowLinkForcesWrapGateWithoutCorruption) {
  uint64_t seed = 77;
  FuzzShape shape = ShapeFor(seed);
  shape.ops += 20;

  SyncFuzzOutcome local = RunSyncFuzz(seed, shape, 3, 8, RbBatchPolicy::kAdaptive);
  ASSERT_TRUE(local.ok);

  // Deep in-flight budget: the wraparound gate is the binding constraint.
  SyncFuzzOutcome slow = RunSyncFuzz(seed, shape, 3, 8, RbBatchPolicy::kAdaptive,
                                     /*remote_last_replica=*/true,
                                     /*kill_remote_at=*/0, /*post_run=*/nullptr,
                                     /*link_latency=*/Millis(2),
                                     /*max_inflight_frames=*/256);
  ASSERT_TRUE(slow.ok);
  EXPECT_GT(slow.wrap_stalls, 0u);  // The master actually parked on the gate.
  EXPECT_EQ(local.transcript, slow.transcript);
  EXPECT_EQ(local.master_log, slow.master_log);
  EXPECT_EQ(slow.remote_log, slow.master_log);
  EXPECT_EQ(slow.remote_tail, slow.master_tail);

  // Shallow budget on the same slow link: transport backpressure throttles the
  // master first, and the result is still byte-identical.
  SyncFuzzOutcome throttled = RunSyncFuzz(seed, shape, 3, 8, RbBatchPolicy::kAdaptive,
                                          /*remote_last_replica=*/true,
                                          /*kill_remote_at=*/0, /*post_run=*/nullptr,
                                          /*link_latency=*/Millis(2));
  ASSERT_TRUE(throttled.ok);
  EXPECT_EQ(local.transcript, throttled.transcript);
  EXPECT_EQ(throttled.remote_log, throttled.master_log);
}

// Authenticated multi-threaded cross-machine runs: the sealed kSyncLog/kEntries
// streams and MAC-verified acks must reproduce the unauthenticated results
// byte-for-byte — transcripts, sync log, mirror — and the wraparound gate (which
// now runs purely on ack-piggybacked replay cursors) must still park-and-release
// correctly when the slow link pushes the replay lag past a full log lap.
TEST(SyncLockstepTest, AuthenticatedSyncStreamMatchesUnauthenticated) {
  for (uint64_t seed : {11, 77, 305, 999}) {
    FuzzShape shape = ShapeFor(seed);

    SyncFuzzOutcome plain = RunSyncFuzz(seed, shape, 3, 8, RbBatchPolicy::kAdaptive,
                                        /*remote_last_replica=*/true);
    ASSERT_TRUE(plain.ok) << "seed " << seed;
    ASSERT_EQ(plain.transcript.find("<missing>"), std::string::npos) << "seed " << seed;

    SyncFuzzOutcome auth = RunSyncFuzz(seed, shape, 3, 8, RbBatchPolicy::kAdaptive,
                                       /*remote_last_replica=*/true,
                                       /*kill_remote_at=*/0, /*post_run=*/nullptr,
                                       /*link_latency=*/50 * kMicrosecond,
                                       /*max_inflight_frames=*/8, /*rb_auth=*/true);
    ASSERT_TRUE(auth.ok) << "seed " << seed;
    ASSERT_EQ(plain.transcript, auth.transcript) << "seed " << seed;
    ASSERT_EQ(plain.rb_entries, auth.rb_entries) << "seed " << seed;
    ASSERT_EQ(plain.master_log, auth.master_log) << "seed " << seed;
    ASSERT_EQ(auth.remote_tail, auth.master_tail) << "seed " << seed;
    ASSERT_EQ(auth.remote_log, auth.master_log) << "seed " << seed;
  }

  // Slow link, deep in-flight budget: the wrap gate must bind under auth too.
  uint64_t seed = 77;
  FuzzShape shape = ShapeFor(seed);
  shape.ops += 20;
  SyncFuzzOutcome local = RunSyncFuzz(seed, shape, 3, 8, RbBatchPolicy::kAdaptive);
  ASSERT_TRUE(local.ok);
  SyncFuzzOutcome slow = RunSyncFuzz(seed, shape, 3, 8, RbBatchPolicy::kAdaptive,
                                     /*remote_last_replica=*/true,
                                     /*kill_remote_at=*/0, /*post_run=*/nullptr,
                                     /*link_latency=*/Millis(2),
                                     /*max_inflight_frames=*/256, /*rb_auth=*/true);
  ASSERT_TRUE(slow.ok);
  EXPECT_GT(slow.wrap_stalls, 0u);
  EXPECT_EQ(local.transcript, slow.transcript);
  EXPECT_EQ(slow.remote_log, slow.master_log);
  EXPECT_EQ(slow.remote_tail, slow.master_tail);

  // Authenticated kill + attested re-seed with the sync-log image in the
  // snapshot: still byte-identical to the never-died unauthenticated run.
  int exercised = 0;
  for (uint64_t rs : {19ull, 131ull, 333ull}) {
    FuzzShape rshape = ShapeFor(rs);
    rshape.ops += 12;
    SyncFuzzOutcome base = RunSyncFuzz(rs, rshape, 3, 8, RbBatchPolicy::kAdaptive,
                                       /*remote_last_replica=*/true);
    ASSERT_TRUE(base.ok) << "seed " << rs;
    SyncFuzzOutcome reseeded = RunSyncFuzz(rs, rshape, 3, 8, RbBatchPolicy::kAdaptive,
                                           /*remote_last_replica=*/true,
                                           /*kill_remote_at=*/Micros(200),
                                           /*post_run=*/nullptr,
                                           /*link_latency=*/50 * kMicrosecond,
                                           /*max_inflight_frames=*/8,
                                           /*rb_auth=*/true);
    ASSERT_TRUE(reseeded.ok) << "seed " << rs;
    ASSERT_EQ(base.transcript, reseeded.transcript) << "seed " << rs;
    ASSERT_EQ(base.master_log, reseeded.master_log) << "seed " << rs;
    ASSERT_EQ(reseeded.remote_log, reseeded.master_log) << "seed " << rs;
    if (reseeded.remote_deaths > 0 && reseeded.rejoins > 0) {
      ++exercised;
    }
  }
  EXPECT_GE(exercised, 2);
}

// Kill-one-replica-mid-fuzz re-seed variant: tearing the remote multi-threaded
// replica's link down mid-run and checkpoint-seeding a replacement (snapshot now
// carrying the sync-log image + replay cursor) must be invisible — transcripts,
// RB stream, and sync log byte-identical to the never-died run.
TEST(SyncLockstepTest, ReseedMidFuzzCarriesSyncLog) {
  int exercised = 0;
  for (uint64_t seed : {5, 19, 33, 47, 88, 131, 212, 333, 421, 555, 777, 901}) {
    FuzzShape shape = ShapeFor(seed);
    shape.ops += 12;  // Long enough that the kill lands mid-run.

    SyncFuzzOutcome base = RunSyncFuzz(seed, shape, 3, 8, RbBatchPolicy::kAdaptive,
                                       /*remote_last_replica=*/true);
    ASSERT_TRUE(base.ok) << "seed " << seed;
    ASSERT_EQ(base.transcript.find("<missing>"), std::string::npos) << "seed " << seed;

    SyncFuzzOutcome reseeded = RunSyncFuzz(seed, shape, 3, 8, RbBatchPolicy::kAdaptive,
                                           /*remote_last_replica=*/true,
                                           /*kill_remote_at=*/Micros(200));
    ASSERT_TRUE(reseeded.ok) << "seed " << seed;
    ASSERT_EQ(base.transcript, reseeded.transcript) << "seed " << seed;
    ASSERT_EQ(base.rb_entries, reseeded.rb_entries) << "seed " << seed;
    ASSERT_EQ(base.master_log, reseeded.master_log) << "seed " << seed;
    ASSERT_EQ(reseeded.remote_tail, reseeded.master_tail) << "seed " << seed;
    ASSERT_EQ(reseeded.remote_log, reseeded.master_log) << "seed " << seed;
    if (reseeded.remote_deaths > 0) {
      ++exercised;
      ASSERT_GE(reseeded.rejoins, 1u) << "seed " << seed;
    }
  }
  // The kill must actually land mid-run for most seeds or the variant is vacuous.
  EXPECT_GE(exercised, 10);
}

// Epoch regression on data frames: after a re-seed, a frame stamped with a
// pre-join epoch is a replay by definition — it is rejected, the mirror stays
// untouched, and the link is torn down (a peer re-sending old epochs is
// compromised or hopelessly diverged, never merely slow). Post-tear frames are
// no-ops. A current-epoch frame starting anywhere but the mirror tail is a
// diverged stream and also tears the link.
TEST(SyncLockstepTest, SyncLogEpochRegressionTearsLink) {
  bool exercised_stale = false;
  bool exercised_gap = false;
  for (uint64_t seed : {19, 131, 333}) {
    FuzzShape shape = ShapeFor(seed);
    shape.ops += 12;
    bool gap_probe = seed == 131;
    RunSyncFuzz(seed, shape, 3, 8, RbBatchPolicy::kAdaptive,
                /*remote_last_replica=*/true, /*kill_remote_at=*/Micros(200),
                [&exercised_stale, &exercised_gap, gap_probe](Remon& mvee,
                                                              SimWorld& w) {
                  RemoteSyncAgent* agent = mvee.remote_agent(2);
                  SyncAgent* mirror = mvee.sync_agent(2);
                  ASSERT_TRUE(agent != nullptr && mirror != nullptr);
                  if (agent->join_epoch() < 2) {
                    return;  // The kill landed after the run; nothing to probe.
                  }
                  uint64_t tail = mirror->tail();
                  uint64_t rejects = agent->frames_rejected();

                  // At the current epoch with the correct start a frame applies.
                  RbWireFrame live;
                  live.type = RbFrameType::kSyncLog;
                  live.epoch = agent->join_epoch();
                  live.sync_start = tail;
                  live.sync_records = {RbSyncLogRecord{99, 0}};
                  EXPECT_TRUE(agent->InjectFrameForTest(live));
                  EXPECT_EQ(mirror->tail(), tail + 1);
                  ASSERT_FALSE(agent->link_torn());

                  if (gap_probe) {
                    // A gap after the tail is a diverged stream: rejected, torn.
                    exercised_gap = true;
                    RbWireFrame gap;
                    gap.type = RbFrameType::kSyncLog;
                    gap.epoch = agent->join_epoch();
                    gap.sync_start = tail + 5;
                    gap.sync_records = {RbSyncLogRecord{7, 1}};
                    EXPECT_FALSE(agent->InjectFrameForTest(gap));
                    EXPECT_EQ(mirror->tail(), tail + 1);
                    EXPECT_TRUE(agent->link_torn());
                    return;
                  }
                  exercised_stale = true;
                  uint64_t regressions = w.sim.stats().rb_epoch_regressions;

                  RbWireFrame stale;
                  stale.type = RbFrameType::kSyncLog;
                  stale.epoch = agent->join_epoch() - 1;
                  stale.sync_start = tail + 1;
                  stale.sync_records = {RbSyncLogRecord{99, 0}};
                  EXPECT_FALSE(agent->InjectFrameForTest(stale));
                  EXPECT_EQ(agent->frames_rejected(), rejects + 1);
                  EXPECT_EQ(mirror->tail(), tail + 1);  // The mirror never saw it.
                  EXPECT_TRUE(agent->link_torn());
                  EXPECT_EQ(w.sim.stats().rb_epoch_regressions, regressions + 1);

                  // The torn link is dead, not wedged: further frames — even
                  // well-formed current-epoch ones — are ignored outright.
                  RbWireFrame after;
                  after.type = RbFrameType::kSyncLog;
                  after.epoch = agent->join_epoch();
                  after.sync_start = tail + 1;
                  after.sync_records = {RbSyncLogRecord{42, 1}};
                  EXPECT_FALSE(agent->InjectFrameForTest(after));
                  EXPECT_EQ(mirror->tail(), tail + 1);
                });
  }
  EXPECT_TRUE(exercised_stale);
  EXPECT_TRUE(exercised_gap);
}

// --- Compute-shaped lockstep fuzz: PARSEC-style barrier/lock suite programs --------
//
// The SyncFuzz workloads above are adversarially shaped (bursts, fuzzed filler);
// this section runs the *actual* Figure-3 suite programs — barrier-rotated
// SyncVariant specs straight off the PARSEC/SPLASH rosters, 4–8 worker threads —
// through the same cross-placement byte-equality bar: per-worker data and
// acquisition transcripts, sync-log image, and mirror must be identical whether
// the replica set is all-local or split across the RB transport, with a tiny
// log forcing many wrap laps.

struct SuiteSyncOutcome {
  bool ok = false;
  std::string transcript;       // /tmp/suite-<name>-t<k>, all workers, in order.
  std::string sync_transcript;  // /tmp/suite-sync-<name>-t<k>, all workers.
  uint64_t ops_recorded = 0;
  uint64_t ops_replayed = 0;
  uint64_t wrap_stalls = 0;
  uint64_t sync_frames_applied = 0;
  uint64_t remote_deaths = 0;
  uint64_t rejoins = 0;
  uint64_t master_tail = 0;
  uint64_t remote_tail = 0;
  std::vector<uint8_t> master_log;
  std::vector<uint8_t> remote_log;
};

// An 8-slot log: every suite schedule laps it dozens of times.
constexpr uint64_t kSuiteSyncLogSize = kSyncLogOffEntries + 8 * kSyncLogEntrySize;

SuiteSyncOutcome RunSuiteSync(const WorkloadSpec& spec, uint64_t seed,
                              bool remote_last_replica, TimeNs kill_remote_at = 0) {
  constexpr int kReplicas = 3;  // Master + one local slave + one (maybe remote) slave.
  SimWorld w(seed);
  RemonOptions opts;
  opts.mode = MveeMode::kRemon;
  opts.replicas = kReplicas;
  opts.level = PolicyLevel::kNonsocketRw;
  opts.rb_batch_max = 16;
  opts.rb_batch_policy = RbBatchPolicy::kAdaptive;
  opts.use_sync_agent = true;
  opts.sync_log_size = kSuiteSyncLogSize;
  opts.machine = w.server_machine;
  if (remote_last_replica) {
    uint32_t host = w.net.AddMachine("replica-host-1");
    w.net.SetLink(w.server_machine, host, LinkParams{60 * kMicrosecond, 0.125});
    opts.replica_machines.assign(kReplicas, w.server_machine);
    opts.replica_machines.back() = host;
  }
  if (kill_remote_at > 0) {
    opts.respawn_dead_replicas = true;
  }
  Remon mvee(&w.kernel, opts);
  mvee.Launch(SuiteProgram(spec), spec.name);
  if (kill_remote_at > 0) {
    w.sim.queue().ScheduleAt(kill_remote_at, [&mvee] {
      RemoteSyncAgent* agent = mvee.remote_agent(kReplicas - 1);
      if (agent != nullptr) {
        agent->Shutdown();
      }
    });
  }
  w.Run();
  SuiteSyncOutcome out;
  out.ok = mvee.finished() && !mvee.divergence_detected();
  for (int t = 0; t < spec.threads; ++t) {
    out.transcript +=
        w.fs.ReadWholeFile("/tmp/suite-" + spec.name + "-t" + std::to_string(t))
            .value_or("<missing>") +
        "|";
    out.sync_transcript +=
        w.fs.ReadWholeFile("/tmp/suite-sync-" + spec.name + "-t" + std::to_string(t))
            .value_or("<missing>") +
        "|";
  }
  const SimStats& stats = w.sim.stats();
  out.ops_recorded = stats.sync_ops_recorded;
  out.ops_replayed = stats.sync_ops_replayed;
  out.wrap_stalls = stats.sync_log_wrap_stalls;
  out.sync_frames_applied = stats.sync_log_frames_applied;
  out.remote_deaths = stats.rb_remote_deaths;
  out.rejoins = stats.rb_replica_joins;
  if (mvee.sync_agent(0) != nullptr && mvee.sync_agent(0)->log_valid()) {
    out.master_tail = mvee.sync_agent(0)->tail();
    out.master_log = mvee.sync_agent(0)->CaptureLogImage();
  }
  if (remote_last_replica) {
    SyncAgent* remote = mvee.sync_agent(kReplicas - 1);
    if (remote != nullptr && remote->log_valid()) {
      out.remote_tail = remote->tail();
      out.remote_log = remote->CaptureLogImage();
    }
  }
  return out;
}

// The fuzzed roster: real Figure-3 specs as barrier-rotated sync variants at 4,
// 6, and 8 worker threads. dedup is the paper's syscall-dense PARSEC outlier,
// fluidanimate its lock-heaviest member; fmm and water_spatial are the SPLASH
// specs whose sync_remote bench columns this section backstops.
std::vector<WorkloadSpec> SuiteSyncRoster() {
  std::vector<WorkloadSpec> roster;
  auto pick = [&roster](const std::vector<WorkloadSpec>& suite,
                        const std::string& name, int threads) {
    for (const WorkloadSpec& s : suite) {
      if (s.name == name) {
        roster.push_back(SyncVariant(s, /*sync_ops=*/2, /*max_iterations=*/30,
                                     /*min_threads=*/threads));
      }
    }
  };
  pick(ParsecSuite(), "dedup", 4);
  pick(ParsecSuite(), "fluidanimate", 6);
  pick(SplashSuite(), "fmm", 8);
  pick(SplashSuite(), "water_spatial", 4);
  REMON_CHECK(roster.size() == 4);
  return roster;
}

TEST(SuiteSyncLockstepTest, RemotePlacementMatchesShmOnParsecShapedPrograms) {
  for (const WorkloadSpec& spec : SuiteSyncRoster()) {
    uint64_t expected_records = static_cast<uint64_t>(spec.threads) *
                                static_cast<uint64_t>(spec.sync_ops) *
                                static_cast<uint64_t>(spec.iterations);
    ASSERT_GT(expected_records, 8u * 20) << spec.name;  // Many laps of the 8-slot log.

    SuiteSyncOutcome local = RunSuiteSync(spec, /*seed=*/spec.threads, false);
    ASSERT_TRUE(local.ok) << spec.name;
    ASSERT_EQ(local.transcript.find("<missing>"), std::string::npos) << spec.name;
    ASSERT_EQ(local.ops_recorded, expected_records) << spec.name;
    ASSERT_EQ(local.ops_replayed, 2 * expected_records) << spec.name;
    ASSERT_GT(local.master_tail, 8u) << spec.name;  // The circular log wrapped.

    SuiteSyncOutcome remote = RunSuiteSync(spec, /*seed=*/spec.threads, true);
    ASSERT_TRUE(remote.ok) << spec.name;
    // Byte-equality across placements: worker data files, acquisition
    // transcripts, the master's log image, and the remote's mirror of it.
    ASSERT_EQ(local.transcript, remote.transcript) << spec.name;
    ASSERT_EQ(local.sync_transcript, remote.sync_transcript) << spec.name;
    ASSERT_EQ(local.master_tail, remote.master_tail) << spec.name;
    ASSERT_EQ(local.master_log, remote.master_log) << spec.name;
    ASSERT_EQ(remote.remote_tail, remote.master_tail) << spec.name;
    ASSERT_EQ(remote.remote_log, remote.master_log) << spec.name;
    ASSERT_GT(remote.sync_frames_applied, 0u) << spec.name;
    ASSERT_EQ(remote.ops_replayed, 2 * expected_records) << spec.name;
  }
}

TEST(SuiteSyncLockstepTest, ReseedMidSuiteRunCarriesSyncLog) {
  // Kill-one-replica variant on the compute shape: tearing the remote replica's
  // link mid-rotation and checkpoint-seeding a replacement must leave every
  // transcript and the sync log byte-identical to the never-died run.
  int exercised = 0;
  for (const WorkloadSpec& spec : SuiteSyncRoster()) {
    SuiteSyncOutcome base = RunSuiteSync(spec, /*seed=*/7, true);
    ASSERT_TRUE(base.ok) << spec.name;

    SuiteSyncOutcome reseeded =
        RunSuiteSync(spec, /*seed=*/7, true, /*kill_remote_at=*/Millis(2));
    ASSERT_TRUE(reseeded.ok) << spec.name;
    ASSERT_EQ(base.transcript, reseeded.transcript) << spec.name;
    ASSERT_EQ(base.sync_transcript, reseeded.sync_transcript) << spec.name;
    ASSERT_EQ(base.master_log, reseeded.master_log) << spec.name;
    ASSERT_EQ(reseeded.remote_tail, reseeded.master_tail) << spec.name;
    ASSERT_EQ(reseeded.remote_log, reseeded.master_log) << spec.name;
    if (reseeded.remote_deaths > 0) {
      ++exercised;
      ASSERT_GE(reseeded.rejoins, 1u) << spec.name;
    }
  }
  EXPECT_GE(exercised, 3);  // The kill must land mid-run on most rosters.
}

TEST(PropertyTest, MonitoredPlusUnmonitoredCoversEverything) {
  // Under ReMon, every replica system call is either monitored or unmonitored;
  // none bypass both monitors.
  SimWorld w(66);
  RemonOptions opts;
  opts.mode = MveeMode::kRemon;
  opts.replicas = 2;
  opts.level = PolicyLevel::kNonsocketRw;
  Remon mvee(&w.kernel, opts);
  mvee.Launch(PropertyWorkload(30), "cover");
  w.Run();
  const SimStats& stats = w.sim.stats();
  // Total calls counted by the kernel == monitored (lockstep rounds cover all
  // replicas) * replicas + unmonitored + the handful of pre-registration calls.
  EXPECT_GT(stats.syscalls_monitored, 0u);
  EXPECT_GT(stats.syscalls_unmonitored, 0u);
  EXPECT_GE(stats.syscalls_total,
            stats.syscalls_monitored + stats.syscalls_unmonitored);
}

TEST(PropertyTest, StressManyIterationsNoDrift) {
  // Long-running ReMon session: cursors, sequence numbers, RB resets, and the file
  // map stay consistent over thousands of unmonitored calls.
  SimWorld w(77);
  RemonOptions opts;
  opts.mode = MveeMode::kRemon;
  opts.replicas = 2;
  opts.level = PolicyLevel::kNonsocketRw;
  opts.rb_size = 512 * 1024;
  opts.max_ranks = 4;
  Remon mvee(&w.kernel, opts);
  mvee.Launch(PropertyWorkload(1500), "stress");
  w.Run();
  EXPECT_TRUE(mvee.finished());
  EXPECT_FALSE(mvee.divergence_detected());
  EXPECT_GT(w.sim.stats().rb_resets, 0u);  // The linear buffer wrapped many times.
}

}  // namespace
}  // namespace remon

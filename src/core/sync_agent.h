// Record/replay agent for user-space synchronization (paper §2.3).
//
// Multi-threaded replicas are non-deterministic: without intervention their threads
// can acquire locks in different orders, execute different system-call sequences, and
// trip GHUMVEE's lockstep even on identical inputs. ReMon embeds a small agent in
// each replica that forces user-space synchronization operations to happen in the
// same order everywhere: the master logs each acquisition (object id, thread rank)
// into a shared totally-ordered log; slave threads block until the log says it is
// their turn.
//
// Log layout (one System V segment per machine, mirrored like the RB):
//
//   offset 0   u64 tail      absolute op count; the publication word (stored last)
//   offset 8   u64 cursors   per-slave replay cursors (8 bytes each, slave i at
//                            offset 8 + 8*(i-1)); published by the consuming slave
//   offset 64  entry slots   16 bytes each: {u32 object, u32 rank, u64 seq}
//
// The log is circular: op `seq` lives in slot `seq % capacity`. The embedded seq
// both makes wraparound safe (a consumer can tell a stale previous-lap slot from
// its own op) and gives the post-run stale-slot scan something to check. The
// master may only overwrite a slot once every replica has consumed its previous
// occupant: it gates on the minimum peer replay cursor and parks on wrap_queue_
// until a consumer catches up. Co-located slaves publish their cursor into the
// shared segment's header words (and wake the master through OnSlaveConsumed);
// remote replicas' cursors arrive piggybacked on the transport's acks
// (RbTransport::SyncCursorFor) — the master never reads a peer agent's host-side
// state.
//
// Cross-machine replica sets: the master's appends additionally stream to remote
// replicas as kSyncLog frames over the RB transport (src/core/rb_wire.h). Appends
// coalesce into one frame per flush — the adaptive RB batch window doubles as the
// sync-log coalescing window — and the remote agent replays them into that
// machine's log mirror with the same publication discipline the master uses
// (entry slots first, tail word last, forward-only, futex wake).

#ifndef SRC_CORE_SYNC_AGENT_H_
#define SRC_CORE_SYNC_AGENT_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/core/replication_buffer.h"
#include "src/core/rb_wire.h"
#include "src/kernel/guest.h"
#include "src/kernel/kernel.h"

namespace remon {

class RbTransport;

// Offsets within the sync log segment (see the layout comment above).
inline constexpr uint64_t kSyncLogOffTail = 0;
inline constexpr uint64_t kSyncLogOffCursors = 8;
inline constexpr uint64_t kSyncLogOffEntries = 64;
inline constexpr uint64_t kSyncLogEntrySize = 16;
// The 64-byte header holds the tail word plus one cursor word per slave: at most
// 7 slaves (8 replicas) fit; Initialize enforces the bound.
inline constexpr int kSyncLogMaxReplicas = 8;

class SyncAgent {
 public:
  struct Config {
    int replica_index = 0;
    int num_replicas = 2;
    uint64_t log_size = 1024 * 1024;
  };

  SyncAgent(Kernel* kernel, Config config) : kernel_(kernel), config_(config) {}

  bool is_master() const { return config_.replica_index == 0; }
  const Config& config() const { return config_; }

  // Entry slots the circular log holds.
  uint64_t capacity() const {
    return (config_.log_size - kSyncLogOffEntries) / kSyncLogEntrySize;
  }

  // Guest-side setup: attach the shared log segment and register with the kernel.
  GuestTask<void> Initialize(Guest& g);

  // Serialization point before acquiring synchronization object `object_id`: the
  // master appends (object, rank); slaves wait until the log replays that exact
  // operation at their cursor.
  GuestTask<void> BeforeAcquire(Guest& g, uint32_t object_id);

  uint64_t ops_recorded() const { return ops_recorded_; }
  uint64_t ops_replayed() const { return ops_replayed_; }
  // Slave-side: next log index this replica will replay.
  uint64_t read_cursor() const { return read_cursor_; }

  // Fellow replicas' agents in replica order (set by the front end). Co-located
  // slaves use entry 0 as the wake channel for a master parked on a full log (the
  // cursor itself travels through the shared segment's header words, never a
  // host-side peer read).
  void set_peers(std::vector<SyncAgent*> peers) { peers_ = std::move(peers); }

  // --- Cross-machine replica sets (src/core/rb_transport.h) -----------------------

  // Master of a cross-machine set: appends additionally stream to the remote
  // agents as kSyncLog frames, and the wraparound gate reads remote replicas'
  // replay cursors from the transport's ack-piggybacked state.
  void set_transport(RbTransport* transport) { transport_ = transport; }

  // Remote slave: invoked after a replay advance that a full log could be parked
  // on — wired to RemoteSyncAgent::SendCursorUpdate so the new cursor reaches the
  // master's gate as a fresh ack. Setting this marks the replica remote: the
  // co-located OnSlaveConsumed wake to peer 0 is suppressed.
  void set_on_consumed(std::function<void()> fn) { on_consumed_ = std::move(fn); }

  // Master: invoked when a cursor-bearing ack advanced a remote replay cursor
  // (wired to RbTransport::set_on_sync_cursor) — re-checks the wraparound gate.
  void OnRemoteCursorAck() { wrap_queue_.Wake(); }

  // Master: invoked once per append-time transport stall with the appending rank
  // (feeds the adaptive batch window's AIMD, like flush-point stalls do).
  void set_on_backpressure(std::function<void(int)> fn) {
    on_backpressure_ = std::move(fn);
  }

  // Coalescing window for the sync-log stream, per appending rank (wired to the
  // master IP-MON's adaptive batch window). Unset or <= 1: one frame per append.
  void set_coalesce_window(std::function<int(int)> fn) { window_fn_ = std::move(fn); }

  // Publishes every pending streamed append as one kSyncLog frame. Invoked from
  // the window check in BeforeAcquire, from IP-MON's flush points (monitored-call
  // entry, quiescent checkpoints), and from the kernel park hook — the same
  // liveness contract batched RB publication has: a parked or dying master thread
  // never leaves a remote slave waiting on an unstreamed sync op.
  void FlushLogStream();
  uint64_t stream_pending() const { return pending_.size(); }

  // Remote-side replay (invoked by the RemoteSyncAgent): applies `records`
  // starting at absolute log index `start_index` into this replica's machine-local
  // mirror — entry slots first, tail word last (forward-only), futex wake.
  // Returns false when the frame cannot belong to this log's state (a gap after
  // the mirror tail, an overflow past capacity, or geometry violations).
  bool ApplyRemoteLog(uint64_t start_index, const std::vector<RbSyncLogRecord>& records);

  // --- Replica re-seed (src/core/snapshot.h) --------------------------------------

  bool log_valid() const { return log_.valid(); }
  const RbView& log() const { return log_; }

  // Captures the occupied slot region (slot order, min(tail, capacity) slots) for
  // the leader checkpoint. Valid on any replica with an initialized log.
  std::vector<uint8_t> CaptureLogImage() const;
  // Captures the slots [from, tail) in seq order (op `from + k` at record k, its
  // seq embedded in the slot bytes) for an O(delta) checkpoint. `from` must be
  // within one lap of the tail — the wrap gate freezes a dead replica's cursor,
  // so its un-replayed suffix always fits.
  std::vector<uint8_t> CaptureLogDelta(uint64_t from) const;
  // The absolute tail as published in this replica's log view.
  uint64_t tail() const;

  // Restores a leader checkpoint into this replica's mirror: validates geometry,
  // the carried read cursor, and per-slot seq/byte consistency against the local
  // state (a mismatch means the streams diverged), then writes the image slots,
  // stores the tail last (forward-only) and wakes waiters. Returns nullptr on
  // success or a static reason string on refusal.
  const char* ApplyLogSnapshot(uint64_t log_size, uint64_t snap_tail,
                               uint64_t snap_read_cursor,
                               const std::vector<uint8_t>& image);

  // Delta restore: applies the seq-ordered slice [sync_from, snap_tail) cut by
  // CaptureLogDelta into this replica's mirror with the same validation
  // discipline — geometry, the carried read cursor, embedded-seq self-check, and
  // lap-congruent divergence checks against every slot the mirror already holds
  // — then slots first, tail word last (forward-only), futex wake. Returns
  // nullptr on success or a static reason string on refusal.
  const char* ApplyLogDelta(uint64_t log_size, uint64_t snap_tail,
                            uint64_t sync_from, uint64_t snap_read_cursor,
                            const std::vector<uint8_t>& image);

 private:
  WaitQueue* LogQueue();
  // Co-located slaves wake a master parked on a full log (the shared-segment
  // analog of a futex wake; the cursor value lives in the segment header).
  void OnSlaveConsumed();
  uint64_t MinPeerReadCursor() const;

  Kernel* kernel_;
  Config config_;
  RbView log_;
  std::vector<SyncAgent*> peers_;
  uint64_t read_cursor_ = 0;  // Slave-side: next log index to replay.
  uint64_t ops_recorded_ = 0;
  uint64_t ops_replayed_ = 0;

  // Master-side wraparound gate (see the layout comment).
  WaitQueue wrap_queue_;

  // Cross-machine streaming state (master only).
  RbTransport* transport_ = nullptr;
  std::function<int(int)> window_fn_;
  std::function<void(int)> on_backpressure_;
  uint64_t pending_start_ = 0;  // Absolute index of pending_[0].
  std::vector<RbSyncLogRecord> pending_;
  // Remote slave: cursor-update channel to this replica's RemoteSyncAgent
  // (non-null marks the replica remote).
  std::function<void()> on_consumed_;
};

}  // namespace remon

#endif  // SRC_CORE_SYNC_AGENT_H_

// Intrusion detection demo: the paper's headline security story.
//
// A "server" parses requests; one request is a code-reuse exploit carrying an
// absolute code address harvested from a leaked binary. Natively the exploit works:
// the gadget runs and exfiltrates a secret file. Under ReMon with Disjoint Code
// Layouts, the same address is executable in at most one replica — the other replica
// faults, GHUMVEE observes the divergence, and the MVEE kills the replica set before
// the exploit's system call does damage (paper §4).

#include <cstdio>
#include <string>
#include <vector>

#include "src/core/remon.h"
#include "src/kernel/guest.h"
#include "src/kernel/kernel.h"
#include "src/mem/shm.h"
#include "src/net/network.h"
#include "src/sim/simulator.h"
#include "src/vfs/fs.h"

using namespace remon;

namespace {

struct World {
  World() : sim(7), net(&sim), kernel(&sim, &fs, &net, &shm) {
    net.AddMachine("host");
    fs.WriteWholeFile("/etc/secret", "the-crown-jewels\n");
  }
  Simulator sim;
  Filesystem fs;
  Network net;
  ShmRegistry shm;
  Kernel kernel;
};

// The vulnerable request handler: a "parser bug" lets a request smuggle a jump
// target. `gadget_addr` models the attacker's leaked code pointer.
ProgramFn VulnerableServer(const std::vector<std::string>& requests, GuestAddr gadget_addr,
                           bool* exfiltrated) {
  return [requests, gadget_addr, exfiltrated](Guest& g) -> GuestTask<void> {
    GuestAddr buf = g.Alloc(256);
    for (const std::string& request : requests) {
      co_await g.Compute(Micros(5));
      if (request.rfind("EXPLOIT", 0) == 0) {
        // The smuggled indirect branch. Under DCL this address is only executable
        // in (at most) the replica the attacker profiled.
        bool ok = co_await g.TryExec(gadget_addr);
        if (ok) {
          // Gadget body: open the secret and "send" it (write to the attacker file).
          int64_t sfd = co_await g.Open("/etc/secret", kO_RDONLY);
          int64_t n = co_await g.Read(static_cast<int>(sfd), buf, 256);
          int64_t out = co_await g.Open("/tmp/exfiltrated", kO_CREAT | kO_RDWR);
          co_await g.Write(static_cast<int>(out), buf, static_cast<uint64_t>(n));
          *exfiltrated = true;
        }
        continue;
      }
      // Benign request: log it.
      int64_t fd = co_await g.Open("/var/server.log", kO_CREAT | kO_WRONLY | kO_APPEND);
      g.Poke(buf, request.data(), request.size());
      co_await g.Write(static_cast<int>(fd), buf, request.size());
      co_await g.Close(static_cast<int>(fd));
    }
  };
}

}  // namespace

int main() {
  std::vector<std::string> requests = {"GET /index\n", "GET /about\n", "EXPLOIT",
                                       "GET /after\n"};

  std::printf("=== scenario 1: native execution (no MVEE) ===\n");
  {
    World w;
    RemonOptions opts;
    opts.mode = MveeMode::kNative;
    Remon mvee(&w.kernel, opts);
    bool exfiltrated = false;
    // The attacker knows the (single) process's code layout.
    mvee.Launch(VulnerableServer(requests, 0, &exfiltrated), "native-server");
    // Resolve the gadget after launch: the process's real code base.
    // (Relaunch with the leaked address — models the attacker's prior reconnaissance.)
    GuestAddr leaked = mvee.replicas()[0]->layout.code_base + 0x80;
    World w2;
    Remon mvee2(&w2.kernel, opts);
    bool exfil2 = false;
    mvee2.Launch(VulnerableServer(requests, leaked, &exfil2), "native-server");
    w2.sim.Run();
    std::printf("exploit executed: %s\n", exfil2 ? "YES" : "no");
    std::printf("secret exfiltrated: %s\n",
                w2.fs.ReadWholeFile("/tmp/exfiltrated").has_value() ? "YES" : "no");
  }

  std::printf("\n=== scenario 2: the same exploit under ReMon (2 replicas, DCL) ===\n");
  {
    World w;
    RemonOptions opts;
    opts.mode = MveeMode::kRemon;
    opts.replicas = 2;
    opts.level = PolicyLevel::kNonsocketRw;
    Remon mvee(&w.kernel, opts);
    bool exfiltrated = false;
    // The attacker leaked the MASTER's layout — the best case for the attacker.
    // Probe layouts first with an identical world/seed.
    World probe;
    Remon probe_mvee(&probe.kernel, opts);
    bool dummy = false;
    probe_mvee.Launch(VulnerableServer(requests, 0, &dummy), "server");
    GuestAddr leaked = probe_mvee.replicas()[0]->layout.code_base + 0x80;

    mvee.Launch(VulnerableServer(requests, leaked, &exfiltrated), "server");
    w.sim.Run();

    std::printf("divergence detected: %s\n",
                mvee.divergence_detected() ? "YES — MVEE shut down" : "no");
    if (mvee.divergence_detected()) {
      const DivergenceRecord& record = mvee.ghumvee()->divergences()[0];
      std::printf("verdict: %s\n", record.reason.c_str());
    }
    std::printf("secret exfiltrated: %s\n",
                w.fs.ReadWholeFile("/tmp/exfiltrated").has_value() ? "YES" : "no");
    std::printf("(the gadget ran in the master, but the slave faulted at the same\n");
    std::printf(" instruction — GHUMVEE killed the replica set before the exploit's\n");
    std::printf(" open/write reached the file system)\n");
  }
  return 0;
}

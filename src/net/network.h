// Simulated network: machines, links, and stream sockets.
//
// The paper's server evaluation (Fig. 5, Table 2) runs a benchmark client on a
// separate machine connected by a gigabit link whose latency is varied with netem
// (~0.1 ms worst case, 2 ms realistic, 5 ms for cross-MVEE comparison). Higher
// latencies hide server-side MVEE overhead — a queueing effect this module
// reproduces: messages experience serialization delay (bytes / bandwidth) on the
// link plus one-way propagation latency, and closed-loop clients therefore spend
// most of their cycle waiting on the network rather than on the (slightly slower)
// replicated server.

#ifndef SRC_NET_NETWORK_H_
#define SRC_NET_NETWORK_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/simulator.h"
#include "src/vfs/file.h"

namespace remon {

class StreamSocket;

// A network endpoint address: (machine, port).
struct SockAddr {
  uint32_t machine = 0;
  uint16_t port = 0;

  bool operator<(const SockAddr& o) const {
    return machine != o.machine ? machine < o.machine : port < o.port;
  }
  bool operator==(const SockAddr& o) const {
    return machine == o.machine && port == o.port;
  }
};

// Point-to-point link parameters.
struct LinkParams {
  DurationNs latency_ns = 60 * kMicrosecond;  // One-way propagation.
  double bytes_per_ns = 0.125;                // 1 Gbit/s.
};

class Network {
 public:
  explicit Network(Simulator* sim) : sim_(sim) {}

  // Machines are small integers; 0 is conventionally "the server machine".
  uint32_t AddMachine(std::string name);
  const std::string& MachineName(uint32_t id) const { return machines_.at(id); }
  uint32_t machine_count() const { return static_cast<uint32_t>(machines_.size()); }

  // Sets parameters for traffic between two distinct machines (both directions).
  void SetLink(uint32_t a, uint32_t b, LinkParams params);
  // Loopback (same-machine) parameters; default ~5us latency, 10 GB/s.
  void SetLoopback(LinkParams params) { loopback_ = params; }

  std::shared_ptr<StreamSocket> CreateStream(uint32_t machine);

  // --- Virtual endpoints (L4 load balancing) ------------------------------------
  //
  // A virtual endpoint is an address with no listener of its own: a connect aimed
  // at it is resolved through the bound router *before the SYN leaves*, and the
  // stream is then established directly to the backend the router picked (the
  // direct-server-return shape — reply traffic never crosses a middlebox). The
  // client still observes the virtual address as its peer, like DNAT. Routers must
  // be deterministic in (connect order, client address) — the fleet's transcripts
  // are replayed byte-for-byte across reruns.
  using VirtualRouter =
      std::function<SockAddr(const SockAddr& vip, const SockAddr& client)>;
  void BindVirtual(const SockAddr& vip, VirtualRouter router);
  void UnbindVirtual(const SockAddr& vip);
  // Resolves `dst` if a router is bound there; returns false (out untouched) when
  // `dst` is a plain address. A router returning `dst` itself means "no backend":
  // the connect then fails like any unserved address.
  bool ResolveVirtual(const SockAddr& dst, const SockAddr& client, SockAddr* out) const;

  // --- Internal plumbing used by StreamSocket -----------------------------------

  Simulator* sim() const { return sim_; }

  int BindListener(const SockAddr& addr, StreamSocket* listener);
  void UnbindListener(const SockAddr& addr, StreamSocket* listener);
  StreamSocket* FindListener(const SockAddr& addr) const;

  // Computes the arrival time of a message of `bytes` sent now from `src` to `dst`,
  // accounting for link serialization (the link is busy while transmitting).
  TimeNs DeliveryTime(uint32_t src, uint32_t dst, uint64_t bytes);

  // Allocates an ephemeral port on `machine`.
  uint16_t AllocEphemeralPort(uint32_t machine);

 private:
  struct LinkState {
    LinkParams params;
    TimeNs busy_until = 0;
  };

  LinkState& LinkFor(uint32_t a, uint32_t b);

  Simulator* sim_;
  std::vector<std::string> machines_;
  std::map<std::pair<uint32_t, uint32_t>, LinkState> links_;
  LinkParams loopback_{kMicrosecond, 10.0};
  LinkState loopback_state_;
  std::map<SockAddr, StreamSocket*> listeners_;
  std::map<SockAddr, VirtualRouter> virtuals_;
  std::map<uint32_t, uint16_t> next_ephemeral_;
};

// A TCP-like reliable, in-order byte-stream socket.
class StreamSocket : public File, public std::enable_shared_from_this<StreamSocket> {
 public:
  enum class State { kCreated, kListening, kConnecting, kConnected, kClosed };

  StreamSocket(Network* net, uint32_t machine) : net_(net), machine_(machine) {}
  ~StreamSocket() override;

  FdType type() const override { return FdType::kSocket; }

  // --- Socket API (non-blocking primitives; the kernel layers blocking on top) --

  int Bind(uint16_t port);
  int Listen(int backlog);
  // Initiates a connection; completion is asynchronous (poll for kPollOut).
  int ConnectTo(const SockAddr& peer);
  // Dequeues one established connection, or nullptr when none pending.
  std::shared_ptr<StreamSocket> TryAccept();

  int64_t Read(void* buf, uint64_t len, uint64_t offset) override;
  int64_t Write(const void* buf, uint64_t len, uint64_t offset) override;
  uint32_t Poll() const override;
  void OnDescriptionClosed(int acc_mode) override;

  int Shutdown(int how);

  State state() const { return state_; }
  const SockAddr& local() const { return local_; }
  const SockAddr& remote() const { return remote_; }
  bool connect_failed() const { return connect_failed_; }
  uint64_t rx_buffered() const { return rx_.size(); }

  // Receive-window size: writers see -EAGAIN once this much data is buffered or in
  // flight toward the peer.
  static constexpr uint64_t kWindowBytes = 256 * 1024;

 private:
  friend class Network;

  void DeliverBytes(const std::vector<uint8_t>& data);
  void DeliverFin();
  void DeliverConnected(std::shared_ptr<StreamSocket> peer_sock);
  void OnAcceptedBy(std::shared_ptr<StreamSocket> server_side);

  Network* net_;
  uint32_t machine_;
  State state_ = State::kCreated;
  SockAddr local_;
  SockAddr remote_;
  bool bound_ = false;
  bool connect_failed_ = false;

  // Established-side plumbing.
  std::weak_ptr<StreamSocket> peer_;
  std::deque<uint8_t> rx_;
  uint64_t in_flight_to_peer_ = 0;  // Bytes sent but not yet delivered.
  bool rx_eof_ = false;
  bool tx_shutdown_ = false;

  // Listener plumbing.
  int backlog_ = 0;
  std::deque<std::shared_ptr<StreamSocket>> accept_queue_;

  int open_descriptions_ = 0;
};

}  // namespace remon

#endif  // SRC_NET_NETWORK_H_

#include "src/kernel/syscall_meta.h"

#include <algorithm>
#include <array>
#include <cstring>

#include "src/kernel/abi.h"
#include "src/sim/check.h"

namespace remon {

namespace {

constexpr InArg V() { return InArg{In::kValue, -1, 0}; }
constexpr InArg P() { return InArg{In::kPtr, -1, 0}; }
constexpr InArg S() { return InArg{In::kCStr, -1, 0}; }
constexpr InArg B(int size_arg) { return InArg{In::kBuf, size_arg, 0}; }
constexpr InArg St(uint32_t size) { return InArg{In::kStruct, -1, size}; }
constexpr InArg Iov(int cnt_arg) { return InArg{In::kIovecIn, cnt_arg, 0}; }
constexpr InArg Msg() { return InArg{In::kMsghdrIn, -1, 0}; }
constexpr InArg Pfd(int cnt_arg) { return InArg{In::kPollfds, cnt_arg, 0}; }
constexpr InArg Eev() { return InArg{In::kEpollEvent, -1, 0}; }
constexpr InArg Sa(int len_arg) { return InArg{In::kSockaddr, len_arg, 0}; }

constexpr OutArg OBufRet(int arg, int size_arg) { return OutArg{Out::kBufRet, arg, size_arg, 0}; }
constexpr OutArg OFix(int arg, uint32_t size) { return OutArg{Out::kBufFixed, arg, -1, size}; }
constexpr OutArg OIov(int arg) { return OutArg{Out::kIovecRet, arg, -1, 0}; }
constexpr OutArg OMsg(int arg) { return OutArg{Out::kMsghdrRet, arg, -1, 0}; }
constexpr OutArg OPfd(int arg, int cnt_arg) { return OutArg{Out::kPollfds, arg, cnt_arg, 0}; }
constexpr OutArg OEp(int arg) { return OutArg{Out::kEpollEvents, arg, -1, 0}; }
constexpr OutArg OSa(int arg, int len_arg) { return OutArg{Out::kSockaddrVR, arg, len_arg, 0}; }
constexpr OutArg OU32(int arg) { return OutArg{Out::kU32, arg, -1, 0}; }
constexpr OutArg OU64(int arg) { return OutArg{Out::kU64, arg, -1, 0}; }
constexpr OutArg OFd2(int arg) { return OutArg{Out::kFd2, arg, -1, 0}; }
constexpr OutArg OSel() { return OutArg{Out::kFdSets, -1, -1, 0}; }

struct DescTable {
  std::array<SyscallDesc, kNumSyscalls> table{};

  void Set(Sys nr, SyscallDesc d) { table[static_cast<size_t>(nr)] = d; }

  DescTable() {
    // Everything defaults to all-kNone in-args (compare raw nothing) — explicitly
    // initialize scalar-only calls to compare their meaningful argument values.
    auto scalar = [&](Sys nr, int n_args, int fd_arg = -1, bool may_block = false,
                      bool returns_fd = false) {
      SyscallDesc d;
      for (int i = 0; i < n_args; ++i) {
        d.in[i] = V();
      }
      d.fd_arg = fd_arg;
      d.may_block = may_block;
      d.returns_fd = returns_fd;
      Set(nr, d);
    };

    // --- Process-local queries ------------------------------------------------
    scalar(Sys::kGetpid, 0);
    scalar(Sys::kGettid, 0);
    scalar(Sys::kGetpgrp, 0);
    scalar(Sys::kGetppid, 0);
    scalar(Sys::kGetgid, 0);
    scalar(Sys::kGetegid, 0);
    scalar(Sys::kGetuid, 0);
    scalar(Sys::kGeteuid, 0);
    scalar(Sys::kGetpriority, 2);
    scalar(Sys::kSetpriority, 3);
    scalar(Sys::kCapget, 2);
    scalar(Sys::kSchedYield, 0);

    Set(Sys::kGettimeofday, {{P()}, {OFix(0, sizeof(GuestTimeval))}});
    Set(Sys::kClockGettime, {{V(), P()}, {OFix(1, sizeof(GuestTimespec))}});
    Set(Sys::kTime, {{P()}, {OU64(0)}});
    Set(Sys::kGetcwd, {{P(), V()}, {OBufRet(0, 1)}});
    Set(Sys::kGetrusage, {{V(), P()}, {OFix(1, sizeof(GuestRusage))}});
    Set(Sys::kTimes, {{P()}, {OFix(0, 32)}});
    Set(Sys::kGetitimer, {{V(), P()}, {OFix(1, sizeof(GuestItimerspec))}});
    Set(Sys::kSysinfo, {{P()}, {OFix(0, sizeof(GuestSysinfo))}});
    Set(Sys::kUname, {{P()}, {OFix(0, sizeof(GuestUtsname))}});
    Set(Sys::kNanosleep, {{St(sizeof(GuestTimespec)), P()}, {}, -1, true});

    // --- FS metadata ------------------------------------------------------------
    Set(Sys::kAccess, {{S(), V()}});
    Set(Sys::kFaccessat, {{V(), S(), V()}});
    Set(Sys::kLseek, {{V(), V(), V()}, {}, 0});
    Set(Sys::kStat, {{S(), P()}, {OFix(1, sizeof(GuestStat))}});
    Set(Sys::kLstat, {{S(), P()}, {OFix(1, sizeof(GuestStat))}});
    Set(Sys::kFstat, {{V(), P()}, {OFix(1, sizeof(GuestStat))}, 0});
    Set(Sys::kFstatat, {{V(), S(), P(), V()}, {OFix(2, sizeof(GuestStat))}});
    Set(Sys::kGetdents, {{V(), P(), V()}, {OBufRet(1, 2)}, 0});
    Set(Sys::kReadlink, {{S(), P(), V()}, {OBufRet(1, 2)}});
    Set(Sys::kReadlinkat, {{V(), S(), P(), V()}, {OBufRet(2, 3)}});
    Set(Sys::kGetxattr, {{S(), S(), P(), V()}, {OBufRet(2, 3)}});
    Set(Sys::kLgetxattr, {{S(), S(), P(), V()}, {OBufRet(2, 3)}});
    Set(Sys::kFgetxattr, {{V(), S(), P(), V()}, {OBufRet(2, 3)}, 0});
    Set(Sys::kSetxattr, {{S(), S(), B(3), V(), V()}});
    Set(Sys::kAlarm, {{V()}});
    Set(Sys::kSetitimer, {{V(), St(sizeof(GuestItimerspec)), P()}});
    Set(Sys::kTimerfdGettime, {{V(), P()}, {OFix(1, sizeof(GuestItimerspec))}, 0});
    Set(Sys::kMadvise, {{P(), V(), V()}});
    Set(Sys::kFadvise64, {{V(), V(), V(), V()}, {}, 0});

    // --- Reads ------------------------------------------------------------------
    Set(Sys::kRead, {{V(), P(), V()}, {OBufRet(1, 2)}, 0, true});
    Set(Sys::kReadv, {{V(), P(), V()}, {OIov(1)}, 0, true});
    Set(Sys::kPread64, {{V(), P(), V(), V()}, {OBufRet(1, 2)}, 0, true});
    Set(Sys::kPreadv, {{V(), P(), V(), V()}, {OIov(1)}, 0, true});
    Set(Sys::kSelect, {{V(), P(), P(), P(), P()}, {OSel()}, -1, true});
    Set(Sys::kPoll, {{Pfd(1), V(), V()}, {OPfd(0, 1)}, -1, true});

    // --- Conditionals -----------------------------------------------------------
    Set(Sys::kFutex, {{P(), V(), V(), P()}, {}, -1, true});
    Set(Sys::kIoctl, {{V(), V(), P()}, {OU32(2)}, 0});
    Set(Sys::kFcntl, {{V(), V(), V()}, {}, 0});

    // --- FS sync ----------------------------------------------------------------
    scalar(Sys::kSync, 0);
    scalar(Sys::kSyncfs, 1, 0);
    scalar(Sys::kFsync, 1, 0);
    scalar(Sys::kFdatasync, 1, 0);
    Set(Sys::kTimerfdSettime, {{V(), V(), St(sizeof(GuestItimerspec)), P()}, {}, 0});

    // --- Writes ------------------------------------------------------------------
    Set(Sys::kWrite, {{V(), B(2), V()}, {}, 0, true});
    Set(Sys::kWritev, {{V(), Iov(2), V()}, {}, 0, true});
    Set(Sys::kPwrite64, {{V(), B(2), V(), V()}, {}, 0, true});
    Set(Sys::kPwritev, {{V(), Iov(2), V(), V()}, {}, 0, true});

    // --- Socket reads --------------------------------------------------------------
    Set(Sys::kEpollWait, {{V(), P(), V(), V()}, {OEp(1)}, 0, true});
    Set(Sys::kRecvfrom, {{V(), P(), V(), V(), P(), P()}, {OBufRet(1, 2), OSa(4, 5)}, 0, true});
    Set(Sys::kRecvmsg, {{V(), Msg(), V()}, {OMsg(1)}, 0, true});
    Set(Sys::kRecvmmsg, {{V(), Msg(), V(), V()}, {OMsg(1)}, 0, true});
    Set(Sys::kGetsockname, {{V(), P(), P()}, {OSa(1, 2)}, 0});
    Set(Sys::kGetpeername, {{V(), P(), P()}, {OSa(1, 2)}, 0});
    Set(Sys::kGetsockopt, {{V(), V(), V(), P(), P()}, {OU32(3)}, 0});

    // --- Socket writes ------------------------------------------------------------
    Set(Sys::kSendto, {{V(), B(2), V(), V(), Sa(5), V()}, {}, 0, true});
    Set(Sys::kSendmsg, {{V(), Msg(), V()}, {}, 0, true});
    Set(Sys::kSendmmsg, {{V(), Msg(), V(), V()}, {}, 0, true});
    Set(Sys::kSendfile, {{V(), V(), P(), V()}, {OU64(2)}, 0, true});
    Set(Sys::kEpollCtl, {{V(), V(), V(), Eev()}, {}, 0});
    Set(Sys::kSetsockopt, {{V(), V(), V(), B(4), V()}, {}, 0});
    Set(Sys::kShutdown, {{V(), V()}, {}, 0});

    // --- FD lifecycle -----------------------------------------------------------
    Set(Sys::kOpen, {{S(), V(), V()}, {}, -1, false, true});
    Set(Sys::kOpenat, {{V(), S(), V(), V()}, {}, -1, false, true});
    Set(Sys::kClose, {{V()}, {}, 0});
    Set(Sys::kDup, {{V()}, {}, 0, false, true});
    Set(Sys::kDup2, {{V(), V()}, {}, 0, false, true});
    Set(Sys::kPipe, {{P()}, {OFd2(0)}});
    Set(Sys::kPipe2, {{P(), V()}, {OFd2(0)}});
    Set(Sys::kSocket, {{V(), V(), V()}, {}, -1, false, true});
    Set(Sys::kBind, {{V(), Sa(2), V()}, {}, 0});
    Set(Sys::kListen, {{V(), V()}, {}, 0});
    Set(Sys::kAccept, {{V(), P(), P()}, {OSa(1, 2)}, 0, true, true});
    Set(Sys::kAccept4, {{V(), P(), P(), V()}, {OSa(1, 2)}, 0, true, true});
    Set(Sys::kConnect, {{V(), Sa(2), V()}, {}, 0, true});
    Set(Sys::kEpollCreate, {{V()}, {}, -1, false, true});
    Set(Sys::kEpollCreate1, {{V()}, {}, -1, false, true});
    Set(Sys::kTimerfdCreate, {{V(), V()}, {}, -1, false, true});
    Set(Sys::kEventfd, {{V()}, {}, -1, false, true});
    Set(Sys::kEventfd2, {{V(), V()}, {}, -1, false, true});

    // --- Memory management --------------------------------------------------------
    Set(Sys::kMmap, {{P(), V(), V(), V(), V(), V()}});
    Set(Sys::kMunmap, {{P(), V()}});
    Set(Sys::kMprotect, {{P(), V(), V()}});
    Set(Sys::kMremap, {{P(), V(), V(), V()}});
    Set(Sys::kBrk, {{P()}});
    Set(Sys::kShmget, {{V(), V(), V()}});
    Set(Sys::kShmat, {{V(), P(), V()}});
    Set(Sys::kShmdt, {{P()}});
    Set(Sys::kShmctl, {{V(), V(), P()}});

    // --- Process / thread lifecycle ---------------------------------------------
    Set(Sys::kClone, {{V()}});
    Set(Sys::kFork, {{}});
    Set(Sys::kExecve, {{S(), P(), P()}});
    Set(Sys::kExit, {{V()}});
    Set(Sys::kExitGroup, {{V()}});
    Set(Sys::kWait4, {{V(), P(), V(), P()}, {}, -1, true});
    Set(Sys::kKill, {{V(), V()}});
    Set(Sys::kTgkill, {{V(), V(), V()}});

    // --- Signals -----------------------------------------------------------------
    Set(Sys::kRtSigaction, {{V(), V(), P(), V()}});
    Set(Sys::kRtSigprocmask, {{V(), V(), P(), V()}});
    Set(Sys::kRtSigreturn, {{}});
    Set(Sys::kSigaltstack, {{P(), P()}});
    Set(Sys::kPause, {{}, {}, -1, true});

    // --- Misc ---------------------------------------------------------------------
    Set(Sys::kGetrandom, {{P(), V(), V()}, {OBufRet(0, 1)}});
    Set(Sys::kUnlink, {{S()}});
    Set(Sys::kMkdir, {{S(), V()}});
    Set(Sys::kRmdir, {{S()}});
    Set(Sys::kRename, {{S(), S()}});
    Set(Sys::kTruncate, {{S(), V()}});
    Set(Sys::kFtruncate, {{V(), V()}, {}, 0});
    Set(Sys::kChdir, {{S()}});

    // --- MVEE-internal ----------------------------------------------------------
    Set(Sys::kRemonIpmonRegister, {{P(), P(), V()}});
    Set(Sys::kRemonRbFlush, {{V()}});
    Set(Sys::kRemonSyncRegister, {{P()}});
  }
};

const DescTable& Table() {
  static const DescTable table;
  return table;
}

void AppendBytes(std::vector<uint8_t>* out, const void* data, uint64_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  out->insert(out->end(), p, p + len);
}

void AppendU64(std::vector<uint8_t>* out, uint64_t v) { AppendBytes(out, &v, 8); }

// Marker appended when guest memory cannot be read (the compare then diverges only if
// replicas differ in readability, which is itself a divergence signal).
void AppendFaultMarker(std::vector<uint8_t>* out) { AppendBytes(out, "\xde\xad", 2); }

void SerializeGuestRange(Process* p, std::vector<uint8_t>* out, GuestAddr addr, uint64_t len) {
  if (addr == 0 || len == 0) {
    AppendU64(out, 0);
    return;
  }
  std::vector<uint8_t> tmp(len);
  if (!p->mem().Read(addr, tmp.data(), len).ok) {
    AppendFaultMarker(out);
    return;
  }
  AppendU64(out, len);
  AppendBytes(out, tmp.data(), len);
}

}  // namespace

const SyscallDesc& DescOf(Sys nr) {
  REMON_CHECK(static_cast<uint32_t>(nr) < kNumSyscalls);
  return Table().table[static_cast<size_t>(nr)];
}

std::vector<uint8_t> SerializeCallSignature(Process* p, const SyscallRequest& req) {
  const SyscallDesc& d = DescOf(req.nr);
  std::vector<uint8_t> out;
  out.reserve(64);
  AppendU64(&out, static_cast<uint64_t>(req.nr));
  for (int i = 0; i < 6; ++i) {
    const InArg& a = d.in[i];
    uint64_t v = req.arg(i);
    switch (a.kind) {
      case In::kNone:
        break;
      case In::kValue:
        AppendU64(&out, v);
        break;
      case In::kPtr:
        out.push_back(v == 0 ? 0 : 1);
        break;
      case In::kCStr: {
        auto s = p->mem().ReadCString(v);
        if (!s) {
          AppendFaultMarker(&out);
        } else {
          AppendU64(&out, s->size());
          AppendBytes(&out, s->data(), s->size());
        }
        break;
      }
      case In::kBuf:
        SerializeGuestRange(p, &out, v, a.size_arg >= 0 ? req.arg(a.size_arg) : 0);
        break;
      case In::kStruct:
        SerializeGuestRange(p, &out, v, a.fixed);
        break;
      case In::kIovecIn: {
        uint64_t cnt = a.size_arg >= 0 ? req.arg(a.size_arg) : 0;
        out.push_back(v == 0 ? 0 : 1);
        AppendU64(&out, cnt);
        for (uint64_t j = 0; j < std::min<uint64_t>(cnt, 1024); ++j) {
          GuestIovec iov;
          if (!p->mem().Read(v + j * sizeof(GuestIovec), &iov, sizeof(iov)).ok) {
            AppendFaultMarker(&out);
            break;
          }
          SerializeGuestRange(p, &out, iov.iov_base, iov.iov_len);
        }
        break;
      }
      case In::kMsghdrIn: {
        GuestMsghdr hdr;
        if (v == 0 || !p->mem().Read(v, &hdr, sizeof(hdr)).ok) {
          out.push_back(v == 0 ? 0 : 2);
          break;
        }
        AppendU64(&out, hdr.msg_iovlen);
        for (uint64_t j = 0; j < std::min<uint64_t>(hdr.msg_iovlen, 1024); ++j) {
          GuestIovec iov;
          if (!p->mem().Read(hdr.msg_iov + j * sizeof(GuestIovec), &iov, sizeof(iov)).ok) {
            AppendFaultMarker(&out);
            break;
          }
          SerializeGuestRange(p, &out, iov.iov_base, iov.iov_len);
        }
        break;
      }
      case In::kPollfds: {
        uint64_t cnt = a.size_arg >= 0 ? req.arg(a.size_arg) : 0;
        AppendU64(&out, cnt);
        for (uint64_t j = 0; j < std::min<uint64_t>(cnt, 1024); ++j) {
          GuestPollfd pf;
          if (!p->mem().Read(v + j * sizeof(GuestPollfd), &pf, sizeof(pf)).ok) {
            AppendFaultMarker(&out);
            break;
          }
          AppendU64(&out, static_cast<uint64_t>(pf.fd));
          AppendU64(&out, static_cast<uint16_t>(pf.events));
        }
        break;
      }
      case In::kEpollEvent: {
        GuestEpollEvent ev;
        if (v == 0) {
          out.push_back(0);
          break;
        }
        if (!p->mem().Read(v, &ev, sizeof(ev)).ok) {
          AppendFaultMarker(&out);
          break;
        }
        // `data` is a replica-local cookie (often a heap pointer): excluded.
        AppendU64(&out, ev.events);
        break;
      }
      case In::kSockaddr:
        SerializeGuestRange(p, &out, v, sizeof(GuestSockaddrIn));
        break;
    }
  }
  return out;
}

std::vector<OutRegion> CollectOutRegions(Process* p, const SyscallRequest& req, int64_t ret) {
  const SyscallDesc& d = DescOf(req.nr);
  std::vector<OutRegion> regions;
  if (IsSyscallError(ret)) {
    return regions;  // Failed calls write nothing.
  }
  for (const OutArg& o : d.outs) {
    if (o.kind == Out::kNone) {
      continue;
    }
    GuestAddr addr = o.arg >= 0 ? req.arg(o.arg) : 0;
    switch (o.kind) {
      case Out::kNone:
        break;
      case Out::kBufRet: {
        if (addr == 0 || ret <= 0) {
          break;
        }
        uint64_t cap = o.size_arg >= 0 ? req.arg(o.size_arg) : static_cast<uint64_t>(ret);
        regions.push_back({addr, std::min<uint64_t>(static_cast<uint64_t>(ret), cap)});
        break;
      }
      case Out::kBufFixed:
        if (addr != 0) {
          regions.push_back({addr, o.fixed});
        }
        break;
      case Out::kIovecRet:
      case Out::kMsghdrRet: {
        if (addr == 0 || ret <= 0) {
          break;
        }
        GuestAddr iov_addr = addr;
        uint64_t iov_cnt = 0;
        if (o.kind == Out::kMsghdrRet) {
          GuestMsghdr hdr;
          if (!p->mem().Read(addr, &hdr, sizeof(hdr)).ok) {
            break;
          }
          iov_addr = hdr.msg_iov;
          iov_cnt = hdr.msg_iovlen;
        } else {
          iov_cnt = req.arg(2);
        }
        uint64_t remaining = static_cast<uint64_t>(ret);
        for (uint64_t j = 0; j < std::min<uint64_t>(iov_cnt, 1024) && remaining > 0; ++j) {
          GuestIovec iov;
          if (!p->mem().Read(iov_addr + j * sizeof(GuestIovec), &iov, sizeof(iov)).ok) {
            break;
          }
          uint64_t n = std::min<uint64_t>(iov.iov_len, remaining);
          if (n > 0) {
            regions.push_back({iov.iov_base, n});
            remaining -= n;
          }
        }
        break;
      }
      case Out::kPollfds: {
        uint64_t cnt = o.size_arg >= 0 ? req.arg(o.size_arg) : 0;
        if (addr != 0 && cnt > 0) {
          regions.push_back({addr, cnt * sizeof(GuestPollfd)});
        }
        break;
      }
      case Out::kEpollEvents:
        if (addr != 0 && ret > 0) {
          OutRegion r{addr, static_cast<uint64_t>(ret) * sizeof(GuestEpollEvent)};
          r.is_epoll_events = true;
          r.event_count = static_cast<int>(ret);
          regions.push_back(r);
        }
        break;
      case Out::kSockaddrVR: {
        if (addr != 0) {
          regions.push_back({addr, sizeof(GuestSockaddrIn)});
        }
        GuestAddr lenp = o.size_arg >= 0 ? req.arg(o.size_arg) : 0;
        if (lenp != 0) {
          regions.push_back({lenp, 4});
        }
        break;
      }
      case Out::kU32:
        if (addr != 0) {
          regions.push_back({addr, 4});
        }
        break;
      case Out::kU64:
        if (addr != 0) {
          regions.push_back({addr, 8});
        }
        break;
      case Out::kFd2:
        if (addr != 0) {
          regions.push_back({addr, 8});
        }
        break;
      case Out::kFdSets:
        for (int i = 1; i <= 2; ++i) {
          if (req.arg(i) != 0) {
            regions.push_back({req.arg(i), 128});
          }
        }
        break;
    }
  }
  return regions;
}

uint64_t EstimateDataSize(Process* p, const SyscallRequest& req) {
  const SyscallDesc& d = DescOf(req.nr);
  // Six registers plus entry metadata.
  uint64_t size = 6 * 8 + 32;
  for (int i = 0; i < 6; ++i) {
    const InArg& a = d.in[i];
    switch (a.kind) {
      case In::kBuf:
        size += a.size_arg >= 0 ? req.arg(a.size_arg) : 0;
        break;
      case In::kStruct:
        size += a.fixed;
        break;
      case In::kCStr:
        size += 256;
        break;
      case In::kIovecIn:
      case In::kMsghdrIn:
        size += 64 * 1024;  // Conservative: full window.
        break;
      default:
        break;
    }
  }
  for (const OutArg& o : d.outs) {
    switch (o.kind) {
      case Out::kBufRet:
        size += o.size_arg >= 0 ? req.arg(o.size_arg) : 0;
        break;
      case Out::kBufFixed:
        size += o.fixed;
        break;
      case Out::kIovecRet:
      case Out::kMsghdrRet:
        size += 64 * 1024;
        break;
      case Out::kEpollEvents:
        size += req.arg(2) * sizeof(GuestEpollEvent);
        break;
      case Out::kPollfds:
        size += (o.size_arg >= 0 ? req.arg(o.size_arg) : 0) * sizeof(GuestPollfd);
        break;
      case Out::kFdSets:
        size += 256;
        break;
      case Out::kSockaddrVR:
        size += sizeof(GuestSockaddrIn) + 4;
        break;
      case Out::kU32:
        size += 4;
        break;
      case Out::kU64:
      case Out::kFd2:
        size += 8;
        break;
      case Out::kNone:
        break;
    }
  }
  return size;
}

}  // namespace remon

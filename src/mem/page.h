// Physical page frames.
//
// Simulated guest memory is allocated in 4 KiB frames shared by reference counting:
// a frame mapped into several address spaces (System V shared memory, the IP-MON
// replication buffer) is literally the same bytes, so cross-replica communication
// through shared mappings behaves like the real thing.

#ifndef SRC_MEM_PAGE_H_
#define SRC_MEM_PAGE_H_

#include <array>
#include <cstdint>
#include <memory>

namespace remon {

inline constexpr uint64_t kPageSize = 4096;
inline constexpr uint64_t kPageShift = 12;
inline constexpr uint64_t kPageMask = kPageSize - 1;

// A guest virtual address. Guest pointers are plain integers on the host side; all
// dereferencing goes through AddressSpace so permission checks and per-replica layouts
// are enforced.
using GuestAddr = uint64_t;

constexpr GuestAddr PageAlignDown(GuestAddr a) { return a & ~kPageMask; }
constexpr GuestAddr PageAlignUp(GuestAddr a) { return (a + kPageMask) & ~kPageMask; }

struct Page {
  std::array<uint8_t, kPageSize> bytes{};
};

using PageRef = std::shared_ptr<Page>;

inline PageRef NewPage() { return std::make_shared<Page>(); }

// Page / VMA protection bits (PROT_*-like).
enum ProtBits : uint32_t {
  kProtNone = 0,
  kProtRead = 1,
  kProtWrite = 2,
  kProtExec = 4,
};

}  // namespace remon

#endif  // SRC_MEM_PAGE_H_

// Unit tests for the VFS: filesystem tree, pipes, epoll, eventfd, wait queues.

#include <gtest/gtest.h>

#include <cstring>

#include "src/vfs/epoll.h"
#include "src/vfs/eventfd.h"
#include "src/vfs/file.h"
#include "src/vfs/fs.h"
#include "src/vfs/pipe.h"
#include "src/vfs/wait_queue.h"

namespace remon {
namespace {

TEST(WaitQueueTest, OneShotWaiterFiresOnce) {
  WaitQueue q;
  int fired = 0;
  q.AddWaiter([&] { ++fired; });
  q.Wake();
  q.Wake();
  EXPECT_EQ(fired, 1);
}

TEST(WaitQueueTest, ObserverFiresEveryWake) {
  WaitQueue q;
  int fired = 0;
  q.AddObserver([&] { ++fired; });
  q.Wake();
  q.Wake();
  EXPECT_EQ(fired, 2);
}

TEST(WaitQueueTest, RemoveCancelsWaiter) {
  WaitQueue q;
  int fired = 0;
  uint64_t id = q.AddWaiter([&] { ++fired; });
  q.Remove(id);
  q.Wake();
  EXPECT_EQ(fired, 0);
}

TEST(WaitQueueTest, WakeNWakesFifo) {
  WaitQueue q;
  std::vector<int> order;
  q.AddWaiter([&] { order.push_back(1); });
  q.AddWaiter([&] { order.push_back(2); });
  q.AddWaiter([&] { order.push_back(3); });
  EXPECT_EQ(q.WakeN(2), 2);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(q.waiter_count(), 1u);
}

TEST(FilesystemTest, CreateResolveReadWrite) {
  Filesystem fs;
  ASSERT_TRUE(fs.WriteWholeFile("/tmp/a.txt", "hello"));
  auto content = fs.ReadWholeFile("/tmp/a.txt");
  ASSERT_TRUE(content.has_value());
  EXPECT_EQ(*content, "hello");
}

TEST(FilesystemTest, MissingPathResolvesNull) {
  Filesystem fs;
  EXPECT_EQ(fs.Resolve("/no/such/file"), nullptr);
}

TEST(FilesystemTest, MkdirAndNesting) {
  Filesystem fs;
  EXPECT_EQ(fs.Mkdir("/a"), 0);
  EXPECT_EQ(fs.Mkdir("/a/b"), 0);
  EXPECT_TRUE(fs.WriteWholeFile("/a/b/c.txt", "x"));
  EXPECT_NE(fs.Resolve("/a/b/c.txt"), nullptr);
  EXPECT_EQ(fs.Mkdir("/a"), -kEEXIST);
  EXPECT_EQ(fs.Mkdir("/missing/parent/dir"), -kENOENT);
}

TEST(FilesystemTest, UnlinkAndRename) {
  Filesystem fs;
  fs.WriteWholeFile("/tmp/x", "1");
  EXPECT_EQ(fs.Rename("/tmp/x", "/tmp/y"), 0);
  EXPECT_EQ(fs.Resolve("/tmp/x"), nullptr);
  EXPECT_NE(fs.Resolve("/tmp/y"), nullptr);
  EXPECT_EQ(fs.Unlink("/tmp/y"), 0);
  EXPECT_EQ(fs.Unlink("/tmp/y"), -kENOENT);
}

TEST(FilesystemTest, SymlinkResolution) {
  Filesystem fs;
  fs.WriteWholeFile("/tmp/target", "data");
  ASSERT_EQ(fs.Symlink("/tmp/target", "/tmp/link"), 0);
  auto inode = fs.Resolve("/tmp/link");
  ASSERT_NE(inode, nullptr);
  EXPECT_EQ(std::string(inode->data.begin(), inode->data.end()), "data");
  // lstat-style: do not follow the final symlink.
  auto link_inode = fs.Resolve("/tmp/link", "/", /*follow_final_symlink=*/false);
  ASSERT_NE(link_inode, nullptr);
  EXPECT_EQ(link_inode->symlink_target, "/tmp/target");
}

TEST(FilesystemTest, RelativePathsUseCwd) {
  Filesystem fs;
  fs.Mkdir("/home");
  fs.WriteWholeFile("/home/f.txt", "z");
  EXPECT_NE(fs.Resolve("f.txt", "/home"), nullptr);
  EXPECT_NE(fs.Resolve("../home/f.txt", "/tmp"), nullptr);
}

TEST(FilesystemTest, PopulateCreatesCorpus) {
  Filesystem fs;
  fs.Populate("/corpus", 10, 4096, 7);
  for (int i = 0; i < 10; ++i) {
    auto inode = fs.Resolve("/corpus/file" + std::to_string(i) + ".dat");
    ASSERT_NE(inode, nullptr);
    EXPECT_EQ(inode->data.size(), 4096u);
  }
}

TEST(FilesystemTest, SpecialFileSnapshotsGenerator) {
  Filesystem fs;
  int calls = 0;
  fs.RegisterSpecial("/proc/test", [&] {
    ++calls;
    return std::string("gen-") + std::to_string(calls);
  });
  auto inode = fs.Resolve("/proc/test");
  ASSERT_NE(inode, nullptr);
  EXPECT_EQ(inode->type, FdType::kSpecial);
  SpecialHandle h1(inode->generator(), inode);
  char buf[16];
  int64_t n = h1.Read(buf, sizeof(buf), 0);
  EXPECT_EQ(std::string(buf, static_cast<size_t>(n)), "gen-1");
}

TEST(RegularHandleTest, ReadWriteAtOffsets) {
  Filesystem fs;
  auto inode = fs.CreateFile("/tmp/f");
  RegularHandle h(inode, &fs);
  EXPECT_EQ(h.Write("abcdef", 6, 0), 6);
  EXPECT_EQ(h.Size(), 6);
  char buf[4] = {0};
  EXPECT_EQ(h.Read(buf, 3, 2), 3);
  EXPECT_EQ(std::string(buf, 3), "cde");
  EXPECT_EQ(h.Read(buf, 4, 6), 0);  // EOF.
  // Sparse write extends.
  EXPECT_EQ(h.Write("Z", 1, 10), 1);
  EXPECT_EQ(h.Size(), 11);
}

TEST(PipeTest, WriteThenRead) {
  auto [rd, wr] = Pipe::Create();
  EXPECT_EQ(wr->Write("ping", 4, 0), 4);
  char buf[8];
  EXPECT_EQ(rd->Read(buf, 8, 0), 4);
  EXPECT_EQ(std::string(buf, 4), "ping");
}

TEST(PipeTest, EmptyPipeWouldBlock) {
  auto [rd, wr] = Pipe::Create();
  char b;
  EXPECT_EQ(rd->Read(&b, 1, 0), -kEAGAIN);
}

TEST(PipeTest, EofAfterWriterCloses) {
  auto [rd, wr] = Pipe::Create();
  wr->Write("x", 1, 0);
  wr->OnDescriptionClosed(kO_WRONLY);
  char b;
  EXPECT_EQ(rd->Read(&b, 1, 0), 1);
  EXPECT_EQ(rd->Read(&b, 1, 0), 0);  // EOF.
}

TEST(PipeTest, EpipeAfterReaderCloses) {
  auto [rd, wr] = Pipe::Create();
  rd->OnDescriptionClosed(kO_RDONLY);
  EXPECT_EQ(wr->Write("x", 1, 0), -kEPIPE);
}

TEST(PipeTest, CapacityLimitsWrites) {
  auto [rd, wr] = Pipe::Create(8);
  std::vector<uint8_t> data(16, 'a');
  EXPECT_EQ(wr->Write(data.data(), 16, 0), 8);  // Partial.
  EXPECT_EQ(wr->Write(data.data(), 1, 0), -kEAGAIN);
  char buf[8];
  EXPECT_EQ(rd->Read(buf, 8, 0), 8);
  EXPECT_EQ(wr->Write(data.data(), 4, 0), 4);
}

TEST(PipeTest, PollMasks) {
  auto [rd, wr] = Pipe::Create(8);
  EXPECT_EQ(rd->Poll(), 0u);
  EXPECT_EQ(wr->Poll(), kPollOut);
  wr->Write("hi", 2, 0);
  EXPECT_TRUE(rd->Poll() & kPollIn);
}

TEST(PipeTest, ReadWakesBlockedWriter) {
  auto [rd, wr] = Pipe::Create(4);
  wr->Write("full", 4, 0);
  bool woken = false;
  wr->poll_queue().AddWaiter([&] { woken = true; });
  char buf[4];
  rd->Read(buf, 4, 0);
  EXPECT_TRUE(woken);
}

TEST(EventFdTest, CounterSemantics) {
  EventFdFile ev(3);
  uint64_t v = 0;
  EXPECT_EQ(ev.Read(&v, 8, 0), 8);
  EXPECT_EQ(v, 3u);
  EXPECT_EQ(ev.Read(&v, 8, 0), -kEAGAIN);
  uint64_t add = 5;
  EXPECT_EQ(ev.Write(&add, 8, 0), 8);
  EXPECT_TRUE(ev.Poll() & kPollIn);
}

TEST(EpollTest, AddCollectDel) {
  auto [rd, wr] = Pipe::Create();
  auto rd_shared = std::shared_ptr<File>(rd);
  EpollFile ep;
  ASSERT_EQ(ep.Ctl(kEpollCtlAdd, 5, rd_shared, kPollIn, 0xabcd), 0);
  EXPECT_TRUE(ep.Collect(16).empty());
  wr->Write("x", 1, 0);
  auto ready = ep.Collect(16);
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0].fd, 5);
  EXPECT_EQ(ready[0].data, 0xabcdu);
  ASSERT_EQ(ep.Ctl(kEpollCtlDel, 5, nullptr, 0, 0), 0);
  EXPECT_TRUE(ep.Collect(16).empty());
}

TEST(EpollTest, DuplicateAddFails) {
  auto [rd, wr] = Pipe::Create();
  auto shared = std::shared_ptr<File>(rd);
  EpollFile ep;
  EXPECT_EQ(ep.Ctl(kEpollCtlAdd, 1, shared, kPollIn, 0), 0);
  EXPECT_EQ(ep.Ctl(kEpollCtlAdd, 1, shared, kPollIn, 0), -kEEXIST);
}

TEST(EpollTest, ModChangesDataAndEvents) {
  auto [rd, wr] = Pipe::Create();
  auto shared = std::shared_ptr<File>(rd);
  EpollFile ep;
  ep.Ctl(kEpollCtlAdd, 1, shared, kPollIn, 1);
  ep.Ctl(kEpollCtlMod, 1, shared, kPollIn, 99);
  wr->Write("x", 1, 0);
  auto ready = ep.Collect(4);
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0].data, 99u);
}

TEST(EpollTest, ReadinessChangeNotifiesEpollPollQueue) {
  auto [rd, wr] = Pipe::Create();
  auto shared = std::shared_ptr<File>(rd);
  EpollFile ep;
  ep.Ctl(kEpollCtlAdd, 1, shared, kPollIn, 0);
  bool notified = false;
  ep.poll_queue().AddWaiter([&] { notified = true; });
  wr->Write("x", 1, 0);
  EXPECT_TRUE(notified);
  EXPECT_TRUE(ep.Poll() & kPollIn);
}

TEST(EpollTest, LookupDataForShadowMap) {
  auto [rd, wr] = Pipe::Create();
  auto shared = std::shared_ptr<File>(rd);
  EpollFile ep;
  ep.Ctl(kEpollCtlAdd, 7, shared, kPollIn, 0x7777);
  uint64_t data = 0;
  EXPECT_TRUE(ep.LookupData(7, &data));
  EXPECT_EQ(data, 0x7777u);
  EXPECT_FALSE(ep.LookupData(8, &data));
}

TEST(FdTableTest, InstallLowestFree) {
  FdTable fds(16);
  auto file = std::make_shared<EventFdFile>(0);
  auto d1 = std::make_shared<FileDescription>(file, 0);
  auto d2 = std::make_shared<FileDescription>(file, 0);
  EXPECT_EQ(fds.Install(d1), 0);
  EXPECT_EQ(fds.Install(d2), 1);
  fds.Close(0);
  auto d3 = std::make_shared<FileDescription>(file, 0);
  EXPECT_EQ(fds.Install(d3), 0);
}

TEST(FdTableTest, ExhaustionReturnsEmfile) {
  FdTable fds(2);
  auto file = std::make_shared<EventFdFile>(0);
  fds.Install(std::make_shared<FileDescription>(file, 0));
  fds.Install(std::make_shared<FileDescription>(file, 0));
  EXPECT_EQ(fds.Install(std::make_shared<FileDescription>(file, 0)), -kEMFILE);
}

TEST(DirHandleTest, FillDirentsPaginates) {
  Filesystem fs;
  fs.Mkdir("/d");
  for (int i = 0; i < 5; ++i) {
    fs.WriteWholeFile("/d/f" + std::to_string(i), "");
  }
  DirHandle dir(fs.Resolve("/d"));
  GuestDirent entries[2];
  uint64_t cursor = 0;
  EXPECT_EQ(dir.FillDirents(entries, 2, &cursor), 2);
  EXPECT_EQ(dir.FillDirents(entries, 2, &cursor), 2);
  EXPECT_EQ(dir.FillDirents(entries, 2, &cursor), 1);
  EXPECT_EQ(dir.FillDirents(entries, 2, &cursor), 0);
}

}  // namespace
}  // namespace remon

// Replicated server: a lighttpd-style epoll server under ReMon with three replicas,
// driven by a closed-loop benchmark client over a simulated gigabit link.
//
// Demonstrates the paper's server story end to end: transparent I/O replication
// (the client talks to one logical server and cannot tell replication is happening),
// near-native throughput with IP-MON at SOCKET_RW_LEVEL, and the epoll data-pointer
// shadow mapping working under diversified address spaces.

#include <cstdio>

#include "src/harness/runner.h"

using namespace remon;

int main() {
  ServerSpec server = ServerByName("lighttpd");
  ClientSpec client;
  client.connections = 16;
  client.total_requests = 400;
  client.request_bytes = 2048;
  LinkParams gigabit{60 * kMicrosecond, 0.125};

  std::printf("server: %s analog (epoll event loop), client: 16 connections x 400\n",
              server.name.c_str());
  std::printf("requests over a local gigabit link\n\n");

  RunConfig native;
  native.mode = MveeMode::kNative;
  ServerResult base = RunServerBench(server, client, native, gigabit);
  std::printf("native:          %6d requests in %6.2f ms  (%7.0f req/s, %5.0f us latency)\n",
              base.requests, base.seconds * 1e3, base.throughput, base.mean_latency_us);

  for (int replicas : {2, 3}) {
    RunConfig config;
    config.mode = MveeMode::kRemon;
    config.replicas = replicas;
    config.level = PolicyLevel::kSocketRw;
    ServerResult run = RunServerBench(server, client, config, gigabit);
    std::printf("remon %d replicas: %5d requests in %6.2f ms  (%7.0f req/s, %5.0f us latency)",
                replicas, run.requests, run.seconds * 1e3, run.throughput,
                run.mean_latency_us);
    std::printf("  -> %.1f%% overhead%s\n",
                (run.seconds / base.seconds - 1.0) * 100.0,
                run.diverged ? "  [DIVERGED]" : "");
    std::printf("                  monitored=%llu unmonitored=%llu rb_entries=%llu\n",
                static_cast<unsigned long long>(run.stats.syscalls_monitored),
                static_cast<unsigned long long>(run.stats.syscalls_unmonitored),
                static_cast<unsigned long long>(run.stats.rb_entries));
  }

  std::printf(
      "\nAll runs served every request with identical payloads: replication is\n"
      "transparent to the client (paper §2.1), while only the master replica ever\n"
      "touched the network.\n");
  return 0;
}

// Tests for the RB wire format (src/core/rb_wire.{h,cc}): CRC reference vector,
// encode/decode round trips under arbitrary stream fragmentation, and rejection of
// truncated or corrupted frames. docs/RB_WIRE_FORMAT.md is the normative spec the
// expectations here encode.

#include <gtest/gtest.h>

#include <cstring>

#include "src/core/rb_wire.h"
#include "src/core/replication_buffer.h"
#include "src/sim/rng.h"

namespace remon {
namespace {

// Feeds `bytes` into `parser` in random-size chunks (1..17 bytes).
void FeedFragmented(RbFrameParser* parser, const std::vector<uint8_t>& bytes, Rng* rng) {
  size_t pos = 0;
  while (pos < bytes.size()) {
    size_t n = 1 + rng->NextBelow(17);
    n = std::min(n, bytes.size() - pos);
    parser->Feed(bytes.data() + pos, n);
    pos += n;
  }
}

std::vector<RbWireEntry> RandomEntries(Rng* rng, int count) {
  std::vector<RbWireEntry> entries;
  uint64_t off = kRbGlobalHeaderSize + kRbRankHeaderSize;
  for (int i = 0; i < count; ++i) {
    RbWireEntry e;
    e.entry_off = off;
    e.final_state = rng->NextBelow(2) == 0 ? kRbArgsReady : kRbResultsReady;
    e.image.resize(kRbEntryHeaderSize + rng->NextBelow(300));
    for (uint8_t& b : e.image) {
      b = static_cast<uint8_t>(rng->NextBelow(256));
    }
    off += (e.image.size() + 7) & ~uint64_t{7};
    entries.push_back(std::move(e));
  }
  return entries;
}

TEST(Crc32Test, MatchesIeeeReferenceVector) {
  // The canonical CRC-32 check value: crc32("123456789") == 0xcbf43926.
  EXPECT_EQ(Crc32("123456789", 9), 0xcbf43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

TEST(RbWireTest, EntriesRoundTrip) {
  std::vector<RbWireEntry> entries;
  RbWireEntry e;
  e.entry_off = 4096;
  e.final_state = kRbResultsReady;
  e.image = {1, 2, 3, 4, 5, 6, 7, 8};
  entries.push_back(e);

  std::vector<uint8_t> frame = RbWireCodec::EncodeEntries(/*epoch=*/7, /*rank=*/3,
                                                          /*frame_seq=*/42, entries);
  ASSERT_GE(frame.size(), kRbWireHeaderSize);

  RbFrameParser parser;
  parser.Feed(frame.data(), frame.size());
  RbWireFrame out;
  ASSERT_EQ(parser.Next(&out), RbFrameParser::Status::kFrame);
  EXPECT_EQ(out.type, RbFrameType::kEntries);
  EXPECT_EQ(out.epoch, 7u);
  EXPECT_EQ(out.rank, 3u);
  EXPECT_EQ(out.frame_seq, 42u);
  ASSERT_EQ(out.entries.size(), 1u);
  EXPECT_EQ(out.entries[0].entry_off, 4096u);
  EXPECT_EQ(out.entries[0].final_state, kRbResultsReady);
  EXPECT_EQ(out.entries[0].image, e.image);
  EXPECT_EQ(parser.Next(&out), RbFrameParser::Status::kNeedMore);
}

TEST(RbWireTest, AckRoundTrip) {
  std::vector<uint8_t> frame = RbWireCodec::EncodeAck(/*epoch=*/2, /*ack_seq=*/99);
  EXPECT_EQ(frame.size(), kRbWireHeaderSize);
  RbFrameParser parser;
  parser.Feed(frame.data(), frame.size());
  RbWireFrame out;
  ASSERT_EQ(parser.Next(&out), RbFrameParser::Status::kFrame);
  EXPECT_EQ(out.type, RbFrameType::kAck);
  EXPECT_EQ(out.epoch, 2u);
  EXPECT_EQ(out.ack_seq, 99u);
  EXPECT_TRUE(out.entries.empty());
}

// Property: random batched entry sets survive encode -> fragmented stream ->
// decode byte-identically, including many frames back to back on one stream.
TEST(RbWireTest, RandomizedRoundTripUnderFragmentation) {
  Rng rng(20260730);
  for (int iter = 0; iter < 200; ++iter) {
    int frames = 1 + static_cast<int>(rng.NextBelow(5));
    std::vector<std::vector<RbWireEntry>> sent;
    std::vector<uint8_t> stream;
    for (int f = 0; f < frames; ++f) {
      std::vector<RbWireEntry> entries =
          RandomEntries(&rng, 1 + static_cast<int>(rng.NextBelow(16)));
      std::vector<uint8_t> frame = RbWireCodec::EncodeEntries(
          1, static_cast<uint32_t>(rng.NextBelow(16)), static_cast<uint64_t>(f),
          entries);
      stream.insert(stream.end(), frame.begin(), frame.end());
      sent.push_back(std::move(entries));
    }

    RbFrameParser parser;
    FeedFragmented(&parser, stream, &rng);
    for (int f = 0; f < frames; ++f) {
      RbWireFrame out;
      ASSERT_EQ(parser.Next(&out), RbFrameParser::Status::kFrame)
          << "iter " << iter << " frame " << f;
      ASSERT_EQ(out.entries.size(), sent[static_cast<size_t>(f)].size());
      for (size_t i = 0; i < out.entries.size(); ++i) {
        const RbWireEntry& a = out.entries[i];
        const RbWireEntry& b = sent[static_cast<size_t>(f)][i];
        EXPECT_EQ(a.entry_off, b.entry_off);
        EXPECT_EQ(a.final_state, b.final_state);
        ASSERT_EQ(a.image, b.image) << "iter " << iter << " frame " << f;
      }
    }
    RbWireFrame out;
    EXPECT_EQ(parser.Next(&out), RbFrameParser::Status::kNeedMore);
    EXPECT_FALSE(parser.corrupt());
  }
}

TEST(RbWireTest, TruncatedFrameIsNeedMoreNotCorrupt) {
  Rng rng(7);
  std::vector<uint8_t> frame = RbWireCodec::EncodeEntries(1, 0, 1, RandomEntries(&rng, 3));
  RbFrameParser parser;
  RbWireFrame out;
  // Every strict prefix is "need more", never a frame and never corruption.
  for (size_t cut = 0; cut < frame.size(); cut += 13) {
    RbFrameParser fresh;
    fresh.Feed(frame.data(), cut);
    EXPECT_EQ(fresh.Next(&out), RbFrameParser::Status::kNeedMore) << cut;
    EXPECT_FALSE(fresh.corrupt());
  }
  parser.Feed(frame.data(), frame.size());
  EXPECT_EQ(parser.Next(&out), RbFrameParser::Status::kFrame);
}

TEST(RbWireTest, CorruptPayloadByteFailsCrc) {
  Rng rng(11);
  std::vector<uint8_t> frame = RbWireCodec::EncodeEntries(1, 0, 1, RandomEntries(&rng, 2));
  frame[kRbWireHeaderSize + 5] ^= 0x40;  // One flipped bit in the first entry.
  RbFrameParser parser;
  parser.Feed(frame.data(), frame.size());
  RbWireFrame out;
  EXPECT_EQ(parser.Next(&out), RbFrameParser::Status::kCorrupt);
  EXPECT_TRUE(parser.corrupt());
  // The stream is latched dead: even a pristine follow-up frame is rejected.
  std::vector<uint8_t> good = RbWireCodec::EncodeAck(1, 1);
  parser.Feed(good.data(), good.size());
  EXPECT_EQ(parser.Next(&out), RbFrameParser::Status::kCorrupt);
}

TEST(RbWireTest, BadMagicAndBadVersionRejected) {
  std::vector<uint8_t> frame = RbWireCodec::EncodeAck(1, 1);
  {
    std::vector<uint8_t> bad = frame;
    bad[0] ^= 0xff;
    RbFrameParser parser;
    parser.Feed(bad.data(), bad.size());
    RbWireFrame out;
    EXPECT_EQ(parser.Next(&out), RbFrameParser::Status::kCorrupt);
  }
  {
    std::vector<uint8_t> bad = frame;
    bad[4] = 0x7f;  // version low byte
    RbFrameParser parser;
    parser.Feed(bad.data(), bad.size());
    RbWireFrame out;
    EXPECT_EQ(parser.Next(&out), RbFrameParser::Status::kCorrupt);
  }
}

TEST(RbWireTest, OversizedPayloadRejectedBeforeBuffering) {
  std::vector<uint8_t> frame = RbWireCodec::EncodeAck(1, 1);
  uint32_t huge = kRbWireMaxPayload + 1;
  std::memcpy(frame.data() + 20, &huge, 4);  // payload_len field.
  RbFrameParser parser;
  parser.Feed(frame.data(), frame.size());
  RbWireFrame out;
  // Rejected from the header alone — no need to feed 16 MiB first.
  EXPECT_EQ(parser.Next(&out), RbFrameParser::Status::kCorrupt);
}

TEST(RbWireTest, EntryRecordOverrunningPayloadRejected) {
  // Hand-craft a frame whose entry record claims more image bytes than the payload
  // holds; the CRC is recomputed so only the structural check can catch it.
  Rng rng(13);
  std::vector<RbWireEntry> entries = RandomEntries(&rng, 1);
  std::vector<uint8_t> frame = RbWireCodec::EncodeEntries(1, 0, 1, entries);
  uint32_t lied = static_cast<uint32_t>(entries[0].image.size()) + 64;
  std::memcpy(frame.data() + kRbWireHeaderSize + 12, &lied, 4);  // image_len field.
  uint32_t zero = 0;
  std::memcpy(frame.data() + 40, &zero, 4);
  uint32_t crc = Crc32(frame.data(), frame.size());
  std::memcpy(frame.data() + 40, &crc, 4);

  RbFrameParser parser;
  parser.Feed(frame.data(), frame.size());
  RbWireFrame out;
  EXPECT_EQ(parser.Next(&out), RbFrameParser::Status::kCorrupt);
}

}  // namespace
}  // namespace remon

// Property-based and parameterized sweeps over the full system:
//  * transparency — an MVEE run's externally observable effects equal a native
//    run's, for every mode, policy level, replica count, and seed swept here;
//  * liveness — every configuration finishes without divergence on benign programs;
//  * determinism — identical (seed, config) pairs produce identical virtual times.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "src/core/remon.h"
#include "src/harness/runner.h"
#include "src/sim/rng.h"
#include "tests/test_util.h"

namespace remon {
namespace {

// A benign program exercising files, pipes, time, memory, and (optionally) sockets;
// writes its observable output to /tmp/prop-out.
ProgramFn PropertyWorkload(int iterations) {
  return [iterations](Guest& g) -> GuestTask<void> {
    int64_t fd = co_await g.Open("/tmp/prop-out", kO_CREAT | kO_RDWR);
    GuestAddr buf = g.Alloc(512);
    GuestAddr st = g.Alloc(sizeof(GuestStat));
    GuestAddr pipe_fds = g.Alloc(8);
    co_await g.Pipe(pipe_fds);
    int prd = static_cast<int>(g.PeekU32(pipe_fds));
    int pwr = static_cast<int>(g.PeekU32(pipe_fds + 4));
    for (int i = 0; i < iterations; ++i) {
      co_await g.Compute(Micros(10));
      std::string line = "iter-" + std::to_string(i) + ";";
      g.Poke(buf, line.data(), line.size());
      co_await g.Write(static_cast<int>(fd), buf, line.size());
      co_await g.Fstat(static_cast<int>(fd), st);
      if (i % 3 == 0) {
        g.Poke(buf, "p", 1);
        co_await g.Write(pwr, buf, 1);
        co_await g.Read(prd, buf, 1);
      }
      if (i % 5 == 0) {
        co_await g.Getpid();
        GuestAddr tv = g.Alloc(sizeof(GuestTimeval));
        co_await g.Gettimeofday(tv);
      }
    }
    co_await g.Close(prd);
    co_await g.Close(pwr);
    co_await g.Close(static_cast<int>(fd));
  };
}

std::string RunAndHarvest(uint64_t seed, MveeMode mode, int replicas, PolicyLevel level,
                          bool* ok) {
  SimWorld w(seed);
  RemonOptions opts;
  opts.mode = mode;
  opts.replicas = replicas;
  opts.level = level;
  Remon mvee(&w.kernel, opts);
  mvee.Launch(PropertyWorkload(40), "prop");
  w.Run();
  *ok = mvee.finished() && !mvee.divergence_detected();
  return w.fs.ReadWholeFile("/tmp/prop-out").value_or("<missing>");
}

using TransparencyParam = std::tuple<MveeMode, int, PolicyLevel, uint64_t>;

class TransparencyTest : public ::testing::TestWithParam<TransparencyParam> {};

TEST_P(TransparencyTest, OutputsMatchNative) {
  auto [mode, replicas, level, seed] = GetParam();
  bool native_ok = false;
  std::string native =
      RunAndHarvest(seed, MveeMode::kNative, 1, PolicyLevel::kNoIpmon, &native_ok);
  ASSERT_TRUE(native_ok);
  bool mvee_ok = false;
  std::string monitored = RunAndHarvest(seed, mode, replicas, level, &mvee_ok);
  EXPECT_TRUE(mvee_ok);
  EXPECT_EQ(native, monitored);
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndLevels, TransparencyTest,
    ::testing::Values(
        TransparencyParam{MveeMode::kGhumveeOnly, 2, PolicyLevel::kNoIpmon, 1},
        TransparencyParam{MveeMode::kGhumveeOnly, 3, PolicyLevel::kNoIpmon, 2},
        TransparencyParam{MveeMode::kGhumveeOnly, 4, PolicyLevel::kNoIpmon, 3},
        TransparencyParam{MveeMode::kRemon, 2, PolicyLevel::kBase, 4},
        TransparencyParam{MveeMode::kRemon, 2, PolicyLevel::kNonsocketRo, 5},
        TransparencyParam{MveeMode::kRemon, 2, PolicyLevel::kNonsocketRw, 6},
        TransparencyParam{MveeMode::kRemon, 2, PolicyLevel::kSocketRo, 7},
        TransparencyParam{MveeMode::kRemon, 2, PolicyLevel::kSocketRw, 8},
        TransparencyParam{MveeMode::kRemon, 3, PolicyLevel::kNonsocketRw, 9},
        TransparencyParam{MveeMode::kRemon, 5, PolicyLevel::kSocketRw, 10},
        TransparencyParam{MveeMode::kRemon, 7, PolicyLevel::kSocketRw, 11},
        TransparencyParam{MveeMode::kVaranLike, 2, PolicyLevel::kSocketRw, 12},
        TransparencyParam{MveeMode::kVaranLike, 4, PolicyLevel::kSocketRw, 13}));

class ReplicaCountTest : public ::testing::TestWithParam<int> {};

TEST_P(ReplicaCountTest, ServerTransparentForAnyReplicaCount) {
  int replicas = GetParam();
  ServerSpec server = ServerByName("lighttpd");
  ClientSpec client;
  client.connections = 4;
  client.total_requests = 40;
  client.request_bytes = 1024;
  LinkParams link{60 * kMicrosecond, 0.125};

  RunConfig native;
  native.mode = MveeMode::kNative;
  ServerResult base = RunServerBench(server, client, native, link);
  ASSERT_EQ(base.requests, 40);

  RunConfig config;
  config.mode = MveeMode::kRemon;
  config.replicas = replicas;
  config.level = PolicyLevel::kSocketRw;
  ServerResult run = RunServerBench(server, client, config, link);
  EXPECT_FALSE(run.diverged);
  EXPECT_EQ(run.requests, 40);  // Every request served exactly once.
}

INSTANTIATE_TEST_SUITE_P(TwoThroughSeven, ReplicaCountTest, ::testing::Range(2, 8));

class SeedSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeedSweepTest, DeterministicAndTransparent) {
  uint64_t seed = GetParam();
  bool ok1 = false;
  bool ok2 = false;
  std::string out1 =
      RunAndHarvest(seed, MveeMode::kRemon, 2, PolicyLevel::kNonsocketRw, &ok1);
  std::string out2 =
      RunAndHarvest(seed, MveeMode::kRemon, 2, PolicyLevel::kNonsocketRw, &ok2);
  EXPECT_TRUE(ok1);
  EXPECT_TRUE(ok2);
  EXPECT_EQ(out1, out2);  // Bit-for-bit reproducible.

  // Virtual durations also reproduce exactly.
  SimWorld wa(seed);
  RemonOptions opts;
  opts.mode = MveeMode::kRemon;
  opts.replicas = 2;
  opts.level = PolicyLevel::kNonsocketRw;
  {
    Remon mvee(&wa.kernel, opts);
    mvee.Launch(PropertyWorkload(20), "d");
    wa.Run();
  }
  SimWorld wb(seed);
  {
    Remon mvee(&wb.kernel, opts);
    mvee.Launch(PropertyWorkload(20), "d");
    wb.Run();
  }
  EXPECT_EQ(wa.sim.now(), wb.sim.now());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweepTest,
                         ::testing::Values(17, 99, 12345, 777777, 31337));

class RbSizeTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RbSizeTest, CorrectUnderAnyBufferSize) {
  uint64_t rb_kb = GetParam();
  SimWorld w(55);
  RemonOptions opts;
  opts.mode = MveeMode::kRemon;
  opts.replicas = 2;
  opts.level = PolicyLevel::kNonsocketRw;
  opts.rb_size = rb_kb * 1024;
  opts.max_ranks = 4;
  Remon mvee(&w.kernel, opts);
  mvee.Launch(PropertyWorkload(60), "rb");
  w.Run();
  EXPECT_TRUE(mvee.finished());
  EXPECT_FALSE(mvee.divergence_detected());
  std::string out = w.fs.ReadWholeFile("/tmp/prop-out").value_or("");
  EXPECT_NE(out.find("iter-59;"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RbSizeTest, ::testing::Values(128, 256, 1024, 16384));

class SuiteSpecTest : public ::testing::TestWithParam<int> {};

TEST_P(SuiteSpecTest, PhoronixSpecsRunCleanlyUnderRemon) {
  std::vector<WorkloadSpec> suite = PhoronixSuite();
  WorkloadSpec spec = suite[static_cast<size_t>(GetParam()) % suite.size()];
  // Shrink for test runtime.
  spec.iterations = std::min(spec.iterations, 100);
  RunConfig config;
  config.mode = MveeMode::kRemon;
  config.replicas = 2;
  config.level = PolicyLevel::kSocketRw;
  SuiteResult result = RunSuiteWorkload(spec, config);
  EXPECT_TRUE(result.finished) << spec.name;
  EXPECT_FALSE(result.diverged) << spec.name;
}

INSTANTIATE_TEST_SUITE_P(AllPhoronix, SuiteSpecTest, ::testing::Range(0, 7));

// --- Randomized lockstep: batched == unbatched under fuzzed interleavings ---------

// One fuzzed multi-rank program. A seeded xoshiro RNG (identical in every replica:
// the stream depends only on seed and rank) drives each rank through a random mix
// of non-blocking batchable calls (regular-file writes/reads, fstat, base queries),
// flush-forcing blocking calls (shared-pipe pings, nanosleep), and skewed compute
// bursts that shuffle the cross-rank interleaving. Every rank logs each op's result
// into its own transcript file — rank-private, so the bytes depend only on the
// rank's own deterministic op stream, never on cross-rank races.
struct FuzzShape {
  int ranks = 2;
  int ops = 10;
};

FuzzShape ShapeFor(uint64_t seed) {
  Rng rng(seed * 0x9e37 + 17);
  FuzzShape shape;
  shape.ranks = static_cast<int>(2 + rng.NextBelow(3));  // 2..4 ranks.
  shape.ops = static_cast<int>(6 + rng.NextBelow(6));    // 6..11 ops per rank.
  return shape;
}

// Replica count per seed: mostly the common 2-replica setup (keeps 1000 seeds
// affordable), with regular 3- and 4-replica excursions for the N-way waits.
int ReplicasFor(uint64_t seed) {
  if (seed % 11 == 0) {
    return 4;
  }
  if (seed % 5 == 0) {
    return 3;
  }
  return 2;
}

ProgramFn FuzzWorkload(uint64_t seed, FuzzShape shape) {
  return [seed, shape](Guest& g) -> GuestTask<void> {
    GuestAddr pipe_fds = g.Alloc(8);
    co_await g.Pipe(pipe_fds);
    int prd = static_cast<int>(g.PeekU32(pipe_fds));
    int pwr = static_cast<int>(g.PeekU32(pipe_fds + 4));

    auto rank_body = [seed, shape, prd, pwr](int rank) -> ProgramFn {
      return [seed, shape, prd, pwr, rank](Guest& wg) -> GuestTask<void> {
        Rng rng(seed * 1000003 + static_cast<uint64_t>(rank));
        int64_t fd = co_await wg.Open("/tmp/fuzz-" + std::to_string(rank),
                                      kO_CREAT | kO_RDWR);
        GuestAddr buf = wg.Alloc(512);
        GuestAddr st = wg.Alloc(sizeof(GuestStat));
        for (int i = 0; i < shape.ops; ++i) {
          uint64_t op = rng.NextBelow(100);
          int64_t r = 0;
          if (op < 40) {  // Batchable: small regular-file append.
            uint64_t len = 16 + rng.NextBelow(200);
            r = co_await wg.Write(static_cast<int>(fd), buf, len);
          } else if (op < 55) {  // Batchable: metadata query.
            r = co_await wg.Fstat(static_cast<int>(fd), st);
          } else if (op < 65) {  // Base query (different policy class).
            r = co_await wg.Getpid();
          } else if (op < 80) {  // Blocking flush point: shared-pipe ping.
            // Each rank writes before it reads, so total reads never outrun total
            // writes and the cross-rank ping order is free to fuzz itself.
            wg.Poke(buf, "p", 1);
            co_await wg.Write(pwr, buf, 1);
            r = co_await wg.Read(prd, buf, 1);
          } else if (op < 90) {  // Local-call flush point: explicit sleep.
            r = co_await wg.SleepNs(Micros(1 + rng.NextBelow(20)));
          } else {  // Batchable read-back.
            r = co_await wg.Read(static_cast<int>(fd), buf, 64);
          }
          // Skewed compute shuffles which rank reaches the RB first.
          co_await wg.Compute(Micros(rng.NextBelow(25)));
          std::string line = "r" + std::to_string(rank) + "-op" + std::to_string(i) +
                             "=" + std::to_string(r) + ";";
          wg.Poke(buf, line.data(), line.size());
          co_await wg.Write(static_cast<int>(fd), buf, line.size());
        }
        co_await wg.Close(static_cast<int>(fd));
      };
    };

    GuestAddr join = g.Alloc(8);
    co_await g.Pipe(join);
    int join_rd = static_cast<int>(g.PeekU32(join));
    int join_wr = static_cast<int>(g.PeekU32(join + 4));
    for (int rank = 1; rank < shape.ranks; ++rank) {
      auto body = rank_body(rank);
      uint64_t fn = g.RegisterThreadFn([body, join_wr](Guest& wg) -> GuestTask<void> {
        co_await body(wg);
        GuestAddr d = wg.Alloc(1);
        wg.Poke(d, "D", 1);
        co_await wg.Write(join_wr, d, 1);
      });
      co_await g.SpawnThread(fn);
    }
    auto self = rank_body(0);
    co_await self(g);
    // Join with exactly one 1-byte read per worker: a variable-size read here
    // would make the main rank's syscall count depend on worker completion
    // timing, and the whole point is that batching may only change timing.
    GuestAddr sink = g.Alloc(4);
    for (int i = 0; i < shape.ranks - 1; ++i) {
      int64_t n = co_await g.Read(join_rd, sink, 1);
      REMON_CHECK(n == 1);
    }
  };
}

struct FuzzOutcome {
  bool ok = false;
  std::string transcript;     // Concatenated per-rank transcript files.
  uint64_t rb_entries = 0;    // RB stream shape: entry count ...
  uint64_t rb_bytes = 0;      // ... and total bytes must not depend on batching.
  uint64_t remote_deaths = 0;  // Links torn down (kill injection observed).
  uint64_t rejoins = 0;        // Snapshot joins completed (re-seed observed).
  uint64_t join_lockstep_cursor = 0;  // Checkpointed GHUMVEE cursor at last join.
  uint64_t lockstep_rounds = 0;       // Monitored rounds over the whole run.
};

FuzzOutcome RunFuzz(uint64_t seed, FuzzShape shape, int replicas, int batch_max,
                    RbBatchPolicy policy, bool remote_last_replica = false,
                    TimeNs kill_remote_at = 0) {
  SimWorld w(seed);
  RemonOptions opts;
  opts.mode = MveeMode::kRemon;
  opts.replicas = replicas;
  opts.level = PolicyLevel::kNonsocketRw;
  // A small RB (vs. the 16 MiB default) keeps 3000 hermetic worlds affordable and
  // lets long op streams wrap, folding reset rounds into the fuzzed interleavings.
  opts.rb_size = 256 * 1024;
  opts.max_ranks = 4;
  opts.rb_batch_max = batch_max;
  opts.rb_batch_policy = policy;
  if (remote_last_replica) {
    // Cross-machine variant: the last replica runs on its own machine, fed by the
    // RB transport instead of shared frames — the transcript must not notice.
    uint32_t host = w.net.AddMachine("replica-host-1");
    w.net.SetLink(w.server_machine, host, LinkParams{50 * kMicrosecond, 0.125});
    opts.machine = w.server_machine;
    opts.replica_machines.assign(static_cast<size_t>(replicas), w.server_machine);
    opts.replica_machines.back() = host;
  }
  if (kill_remote_at > 0) {
    // Kill-one-replica-mid-fuzz: the remote replica's link dies at the given
    // virtual time and a replacement is checkpoint-seeded back into the set.
    opts.respawn_dead_replicas = true;
  }
  Remon mvee(&w.kernel, opts);
  mvee.Launch(FuzzWorkload(seed, shape), "fuzz");
  if (kill_remote_at > 0) {
    int idx = replicas - 1;
    w.sim.queue().ScheduleAt(kill_remote_at, [&mvee, idx] {
      RemoteSyncAgent* agent = mvee.remote_agent(idx);
      if (agent != nullptr) {
        agent->Shutdown();
      }
    });
  }
  w.Run();
  FuzzOutcome out;
  out.ok = mvee.finished() && !mvee.divergence_detected();
  for (int rank = 0; rank < shape.ranks; ++rank) {
    out.transcript +=
        w.fs.ReadWholeFile("/tmp/fuzz-" + std::to_string(rank)).value_or("<missing>");
    out.transcript += "|";
  }
  out.rb_entries = w.sim.stats().rb_entries;
  out.rb_bytes = w.sim.stats().rb_bytes;
  out.remote_deaths = w.sim.stats().rb_remote_deaths;
  out.rejoins = w.sim.stats().rb_replica_joins;
  if (remote_last_replica && mvee.remote_agent(replicas - 1) != nullptr) {
    out.join_lockstep_cursor =
        mvee.remote_agent(replicas - 1)->last_join_lockstep_cursor();
  }
  if (mvee.ghumvee() != nullptr) {
    out.lockstep_rounds = mvee.ghumvee()->lockstep_rounds();
  }
  return out;
}

// 1000 seeded interleavings (8 shards x 125 seeds), each run three ways: unbatched,
// fixed window, adaptive window. Batching may only change publication timing —
// the slave-visible results (transcripts) and the RB entry stream must be
// byte-identical.
class RandomizedLockstepTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomizedLockstepTest, BatchedMatchesUnbatchedUnderFuzzedInterleavings) {
  constexpr int kSeedsPerShard = 125;
  int shard = GetParam();
  for (int i = 0; i < kSeedsPerShard; ++i) {
    uint64_t seed = static_cast<uint64_t>(shard) * kSeedsPerShard + i + 1;
    FuzzShape shape = ShapeFor(seed);
    int replicas = ReplicasFor(seed);

    FuzzOutcome unbatched =
        RunFuzz(seed, shape, replicas, 0, RbBatchPolicy::kFixed);
    ASSERT_TRUE(unbatched.ok) << "seed " << seed;
    ASSERT_EQ(unbatched.transcript.find("<missing>"), std::string::npos)
        << "seed " << seed;

    FuzzOutcome fixed = RunFuzz(seed, shape, replicas, 4, RbBatchPolicy::kFixed);
    ASSERT_TRUE(fixed.ok) << "seed " << seed;
    ASSERT_EQ(unbatched.transcript, fixed.transcript) << "seed " << seed;
    ASSERT_EQ(unbatched.rb_entries, fixed.rb_entries) << "seed " << seed;
    ASSERT_EQ(unbatched.rb_bytes, fixed.rb_bytes) << "seed " << seed;

    FuzzOutcome adaptive =
        RunFuzz(seed, shape, replicas, 8, RbBatchPolicy::kAdaptive);
    ASSERT_TRUE(adaptive.ok) << "seed " << seed;
    ASSERT_EQ(unbatched.transcript, adaptive.transcript) << "seed " << seed;
    ASSERT_EQ(unbatched.rb_entries, adaptive.rb_entries) << "seed " << seed;
    ASSERT_EQ(unbatched.rb_bytes, adaptive.rb_bytes) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(ThousandSeeds, RandomizedLockstepTest, ::testing::Range(0, 8));

// Cross-machine lockstep: the same fuzzed multi-rank interleavings, with the last
// replica moved to its own machine behind the RB transport. The transport may only
// change *where* slaves read the stream from — the slave-visible results
// (transcripts) and the RB stream shape must stay byte-identical to the SHM
// placement, across batching policies, RB wraps, and blocking flush points.
TEST(RandomizedLockstepTest, RemoteRankMatchesShmUnderFuzzedInterleavings) {
  for (uint64_t seed : {3, 11, 25, 40, 77, 123, 200, 305, 404, 512, 700, 999}) {
    FuzzShape shape = ShapeFor(seed);

    FuzzOutcome shm = RunFuzz(seed, shape, 3, 8, RbBatchPolicy::kAdaptive);
    ASSERT_TRUE(shm.ok) << "seed " << seed;
    ASSERT_EQ(shm.transcript.find("<missing>"), std::string::npos) << "seed " << seed;

    FuzzOutcome remote = RunFuzz(seed, shape, 3, 8, RbBatchPolicy::kAdaptive,
                                 /*remote_last_replica=*/true);
    ASSERT_TRUE(remote.ok) << "seed " << seed;
    ASSERT_EQ(shm.transcript, remote.transcript) << "seed " << seed;
    ASSERT_EQ(shm.rb_entries, remote.rb_entries) << "seed " << seed;
    ASSERT_EQ(shm.rb_bytes, remote.rb_bytes) << "seed " << seed;

    // Unbatched remote placement must agree too (eager per-entry frames).
    FuzzOutcome eager = RunFuzz(seed, shape, 3, 0, RbBatchPolicy::kFixed,
                                /*remote_last_replica=*/true);
    ASSERT_TRUE(eager.ok) << "seed " << seed;
    ASSERT_EQ(shm.transcript, eager.transcript) << "seed " << seed;
    ASSERT_EQ(shm.rb_entries, eager.rb_entries) << "seed " << seed;
  }
}

// Kill-one-replica-mid-fuzz re-seed: tearing the remote replica's link down
// mid-run and checkpoint-seeding a replacement back into the set must yield a
// transcript byte-identical to the uninterrupted run — the replica set survives
// replica loss with no observable effect (acceptance bar for the recovery path).
TEST(RandomizedLockstepTest, ReseedAfterMidRunReplicaDeathMatchesUninterrupted) {
  int exercised = 0;
  for (uint64_t seed : {5, 19, 33, 47, 88, 131, 212, 333, 421, 555, 777, 901}) {
    FuzzShape shape = ShapeFor(seed);
    shape.ops += 24;  // Long enough that the kill always lands mid-run.

    FuzzOutcome uninterrupted = RunFuzz(seed, shape, 3, 8, RbBatchPolicy::kAdaptive,
                                        /*remote_last_replica=*/true);
    ASSERT_TRUE(uninterrupted.ok) << "seed " << seed;
    ASSERT_EQ(uninterrupted.transcript.find("<missing>"), std::string::npos)
        << "seed " << seed;

    FuzzOutcome reseeded = RunFuzz(seed, shape, 3, 8, RbBatchPolicy::kAdaptive,
                                   /*remote_last_replica=*/true,
                                   /*kill_remote_at=*/Micros(120));
    ASSERT_TRUE(reseeded.ok) << "seed " << seed;
    ASSERT_EQ(uninterrupted.transcript, reseeded.transcript) << "seed " << seed;
    ASSERT_EQ(uninterrupted.rb_entries, reseeded.rb_entries) << "seed " << seed;
    ASSERT_EQ(uninterrupted.rb_bytes, reseeded.rb_bytes) << "seed " << seed;

    if (reseeded.remote_deaths > 0) {
      ++exercised;
      ASSERT_GE(reseeded.rejoins, 1u) << "seed " << seed;
      // The replacement resumed from a checkpointed lockstep cursor no later than
      // the run's final monitored round.
      EXPECT_LE(reseeded.join_lockstep_cursor, reseeded.lockstep_rounds)
          << "seed " << seed;
    }
  }
  // The kill must actually have landed mid-run for (at least) 10 of the 12 seeds —
  // a kill after the workload finished would make this test vacuous.
  EXPECT_GE(exercised, 10);
}

// The unbatched (eager per-entry frame) configuration must survive re-seed too:
// the snapshot path may not depend on batching's flush points.
TEST(RandomizedLockstepTest, ReseedWorksUnbatched) {
  for (uint64_t seed : {7, 42, 1337}) {
    FuzzShape shape = ShapeFor(seed);
    shape.ops += 24;
    FuzzOutcome base = RunFuzz(seed, shape, 3, 0, RbBatchPolicy::kFixed,
                               /*remote_last_replica=*/true);
    ASSERT_TRUE(base.ok) << "seed " << seed;
    FuzzOutcome reseeded = RunFuzz(seed, shape, 3, 0, RbBatchPolicy::kFixed,
                                   /*remote_last_replica=*/true,
                                   /*kill_remote_at=*/Micros(120));
    ASSERT_TRUE(reseeded.ok) << "seed " << seed;
    ASSERT_EQ(base.transcript, reseeded.transcript) << "seed " << seed;
    ASSERT_EQ(base.rb_entries, reseeded.rb_entries) << "seed " << seed;
  }
}

TEST(PropertyTest, MonitoredPlusUnmonitoredCoversEverything) {
  // Under ReMon, every replica system call is either monitored or unmonitored;
  // none bypass both monitors.
  SimWorld w(66);
  RemonOptions opts;
  opts.mode = MveeMode::kRemon;
  opts.replicas = 2;
  opts.level = PolicyLevel::kNonsocketRw;
  Remon mvee(&w.kernel, opts);
  mvee.Launch(PropertyWorkload(30), "cover");
  w.Run();
  const SimStats& stats = w.sim.stats();
  // Total calls counted by the kernel == monitored (lockstep rounds cover all
  // replicas) * replicas + unmonitored + the handful of pre-registration calls.
  EXPECT_GT(stats.syscalls_monitored, 0u);
  EXPECT_GT(stats.syscalls_unmonitored, 0u);
  EXPECT_GE(stats.syscalls_total,
            stats.syscalls_monitored + stats.syscalls_unmonitored);
}

TEST(PropertyTest, StressManyIterationsNoDrift) {
  // Long-running ReMon session: cursors, sequence numbers, RB resets, and the file
  // map stay consistent over thousands of unmonitored calls.
  SimWorld w(77);
  RemonOptions opts;
  opts.mode = MveeMode::kRemon;
  opts.replicas = 2;
  opts.level = PolicyLevel::kNonsocketRw;
  opts.rb_size = 512 * 1024;
  opts.max_ranks = 4;
  Remon mvee(&w.kernel, opts);
  mvee.Launch(PropertyWorkload(1500), "stress");
  w.Run();
  EXPECT_TRUE(mvee.finished());
  EXPECT_FALSE(mvee.divergence_detected());
  EXPECT_GT(w.sim.stats().rb_resets, 0u);  // The linear buffer wrapped many times.
}

}  // namespace
}  // namespace remon

#include "src/core/snapshot.h"

#include <algorithm>
#include <cstring>

#include "src/core/ghumvee.h"
#include "src/core/ipmon.h"
#include "src/core/rb_wire.h"
#include "src/core/replication_buffer.h"
#include "src/core/sync_agent.h"
#include "src/kernel/kernel.h"
#include "src/sim/check.h"

namespace remon {

namespace {

// Serialization bounds: a snapshot whose metadata claims more than these is
// rejected before any allocation happens (the frame CRC already passed, so this
// guards against a buggy or hostile leader, not line noise).
constexpr uint64_t kMaxSnapshotRbSize = 1ULL << 30;
constexpr uint32_t kMaxSnapshotRanks = 4096;

// kSnapshotBegin payload header (fixed 88 bytes since wire v3, then the variable
// sections: rank records, file map, epoll shadow, sync-log image).
constexpr size_t kBeginOffRbSize = 0;
constexpr size_t kBeginOffMaxRanks = 8;
constexpr size_t kBeginOffRankCount = 12;
constexpr size_t kBeginOffImageBytes = 16;
constexpr size_t kBeginOffImageCrc = 24;
constexpr size_t kBeginOffChunkCount = 28;
constexpr size_t kBeginOffLockstep = 32;
constexpr size_t kBeginOffFileMapLen = 40;
constexpr size_t kBeginOffEpollCount = 48;
constexpr size_t kBeginOffSyncLogSize = 56;
constexpr size_t kBeginOffSyncTail = 64;
constexpr size_t kBeginOffSyncCursor = 72;
constexpr size_t kBeginOffSyncImageLen = 80;
constexpr size_t kBeginHeaderSize = 88;

// kSnapshotChunk payload header.
constexpr size_t kChunkOffOffset = 0;
constexpr size_t kChunkOffLen = 8;
constexpr size_t kChunkOffReserved = 12;
constexpr size_t kChunkHeaderSize = 16;

constexpr size_t kBeginOffReserved = 52;

// kSnapshotEnd payload.
constexpr size_t kEndOffImageBytes = 0;
constexpr size_t kEndOffImageCrc = 8;
constexpr size_t kEndOffChunkCount = 12;
constexpr size_t kEndSize = 16;

void PutU32(std::vector<uint8_t>* out, size_t off, uint32_t v) {
  std::memcpy(out->data() + off, &v, 4);
}
void PutU64(std::vector<uint8_t>* out, size_t off, uint64_t v) {
  std::memcpy(out->data() + off, &v, 8);
}
uint32_t GetU32(const std::vector<uint8_t>& in, size_t off) {
  uint32_t v = 0;
  std::memcpy(&v, in.data() + off, 4);
  return v;
}
uint64_t GetU64(const std::vector<uint8_t>& in, size_t off) {
  uint64_t v = 0;
  std::memcpy(&v, in.data() + off, 8);
  return v;
}

uint32_t ImageU32(const std::vector<uint8_t>& image, uint64_t off) {
  uint32_t v = 0;
  std::memcpy(&v, image.data() + off, 4);
  return v;
}
uint64_t ImageU64(const std::vector<uint8_t>& image, uint64_t off) {
  uint64_t v = 0;
  std::memcpy(&v, image.data() + off, 8);
  return v;
}

bool PageIsZero(const uint8_t* p) {
  for (uint64_t i = 0; i < kPageSize; ++i) {
    if (p[i] != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace

// --- Sparse materialized-page images ----------------------------------------------

VmaImage CaptureVmaImage(const AddressSpace& mem, GuestAddr start, uint64_t length) {
  VmaImage image;
  image.length = PageAlignUp(length);
  uint8_t page[kPageSize];
  for (uint64_t off = 0; off < image.length; off += kPageSize) {
    // The materialization probe comes first: capture must record lazy holes as
    // holes, never force a terabyte region resident by reading it.
    if (!mem.PageMaterialized(start + off) ||
        !mem.ReadUnchecked(start + off, page, kPageSize).ok) {
      continue;
    }
    if (PageIsZero(page)) {
      continue;  // All-zero pages are indistinguishable from holes on restore.
    }
    if (!image.runs.empty()) {
      PageRun& last = image.runs.back();
      if (last.offset + last.bytes.size() == off) {
        last.bytes.insert(last.bytes.end(), page, page + kPageSize);
        continue;
      }
    }
    image.runs.push_back(PageRun{off, std::vector<uint8_t>(page, page + kPageSize)});
  }
  return image;
}

bool RestoreVmaImage(AddressSpace* mem, GuestAddr start, const VmaImage& image) {
  for (const PageRun& run : image.runs) {
    if (run.offset + run.bytes.size() > image.length ||
        !mem->WriteUnchecked(start + run.offset, run.bytes.data(), run.bytes.size()).ok) {
      return false;
    }
  }
  return true;
}

// --- The leader checkpoint ---------------------------------------------------------

ReplicaSnapshot CaptureLeaderSnapshot(IpMon* master, const Ghumvee* ghumvee,
                                      const SyncAgent* sync_master,
                                      uint64_t sync_read_cursor) {
  REMON_CHECK(master != nullptr && master->is_master());
  REMON_CHECK_MSG(master->rb().valid(), "cannot checkpoint before IP-MON initialized");
  // Quiescent flush point: every deferred batched commit publishes first, so the
  // image never hides a publication the local slaves have already been promised.
  // This also flushes the sync-log stream (IpMon::set_sync_log_flush), so every
  // record in the captured log image has left the coalescing buffer — the first
  // kSyncLog frame behind this checkpoint starts exactly at the captured tail.
  master->FlushRbBatches();

  const RbView& rb = master->rb();
  ReplicaSnapshot snap;
  snap.rb_size = rb.size();
  snap.max_ranks = rb.max_ranks();
  snap.rb_image = CaptureVmaImage(master->process()->mem(), rb.base(), rb.size());
  snap.cursors.reserve(static_cast<size_t>(snap.max_ranks));
  snap.seqs.reserve(static_cast<size_t>(snap.max_ranks));
  for (int r = 0; r < snap.max_ranks; ++r) {
    snap.cursors.push_back(master->rb_cursor(r));
    snap.seqs.push_back(master->rb_seq(r));
  }
  snap.lockstep_cursor = ghumvee != nullptr ? ghumvee->lockstep_rounds() : 0;
  snap.file_map.reserve(master->file_map()->size_bytes());
  for (const PageRef& fm_page : master->file_map()->pages()) {
    snap.file_map.insert(snap.file_map.end(), fm_page->bytes.begin(),
                         fm_page->bytes.end());
  }
  master->epoll_shadow().ForEach([&snap](int epfd, int fd, uint64_t data) {
    snap.epoll.push_back(EpollShadowTriple{epfd, fd, data});
  });
  // Hash-map enumeration order is not part of the checkpoint: sort so the wire
  // bytes are identical across standard-library implementations.
  std::sort(snap.epoll.begin(), snap.epoll.end(),
            [](const EpollShadowTriple& a, const EpollShadowTriple& b) {
              return a.epfd != b.epfd ? a.epfd < b.epfd : a.fd < b.fd;
            });
  if (sync_master != nullptr && sync_master->log_valid()) {
    snap.sync_log_size = sync_master->config().log_size;
    snap.sync_tail = sync_master->tail();
    snap.sync_read_cursor = sync_read_cursor;
    snap.sync_image = sync_master->CaptureLogImage();
  }
  return snap;
}

// --- Wire payloads -----------------------------------------------------------------

SnapshotPayloads SerializeSnapshot(const ReplicaSnapshot& snap) {
  SnapshotPayloads out;

  // Chunks first: Begin carries their count and chained CRC.
  uint32_t crc = 0;
  for (const PageRun& run : snap.rb_image.runs) {
    for (uint64_t pos = 0; pos < run.bytes.size(); pos += kSnapshotChunkBytes) {
      uint64_t len = std::min<uint64_t>(kSnapshotChunkBytes, run.bytes.size() - pos);
      std::vector<uint8_t> chunk(kChunkHeaderSize + len, 0);
      PutU64(&chunk, kChunkOffOffset, run.offset + pos);
      PutU32(&chunk, kChunkOffLen, static_cast<uint32_t>(len));
      std::memcpy(chunk.data() + kChunkHeaderSize, run.bytes.data() + pos, len);
      crc = Crc32(chunk.data(), chunk.size(), crc);
      out.chunks.push_back(std::move(chunk));
    }
  }
  uint64_t image_bytes = snap.rb_image.run_bytes();
  uint32_t chunk_count = static_cast<uint32_t>(out.chunks.size());

  size_t rank_count = snap.cursors.size();
  out.begin.assign(kBeginHeaderSize + rank_count * 16 + snap.file_map.size() +
                       snap.epoll.size() * 16 + snap.sync_image.size(),
                   0);
  PutU64(&out.begin, kBeginOffRbSize, snap.rb_size);
  PutU32(&out.begin, kBeginOffMaxRanks, static_cast<uint32_t>(snap.max_ranks));
  PutU32(&out.begin, kBeginOffRankCount, static_cast<uint32_t>(rank_count));
  PutU64(&out.begin, kBeginOffImageBytes, image_bytes);
  PutU32(&out.begin, kBeginOffImageCrc, crc);
  PutU32(&out.begin, kBeginOffChunkCount, chunk_count);
  PutU64(&out.begin, kBeginOffLockstep, snap.lockstep_cursor);
  PutU64(&out.begin, kBeginOffFileMapLen, snap.file_map.size());
  PutU32(&out.begin, kBeginOffEpollCount, static_cast<uint32_t>(snap.epoll.size()));
  PutU64(&out.begin, kBeginOffSyncLogSize, snap.sync_log_size);
  PutU64(&out.begin, kBeginOffSyncTail, snap.sync_tail);
  PutU64(&out.begin, kBeginOffSyncCursor, snap.sync_read_cursor);
  PutU64(&out.begin, kBeginOffSyncImageLen, snap.sync_image.size());
  size_t pos = kBeginHeaderSize;
  for (size_t r = 0; r < rank_count; ++r) {
    PutU64(&out.begin, pos, snap.cursors[r]);
    PutU64(&out.begin, pos + 8, snap.seqs[r]);
    pos += 16;
  }
  std::memcpy(out.begin.data() + pos, snap.file_map.data(), snap.file_map.size());
  pos += snap.file_map.size();
  for (const EpollShadowTriple& t : snap.epoll) {
    PutU32(&out.begin, pos, static_cast<uint32_t>(t.epfd));
    PutU32(&out.begin, pos + 4, static_cast<uint32_t>(t.fd));
    PutU64(&out.begin, pos + 8, t.data);
    pos += 16;
  }
  if (!snap.sync_image.empty()) {
    std::memcpy(out.begin.data() + pos, snap.sync_image.data(), snap.sync_image.size());
    pos += snap.sync_image.size();
  }

  out.end.assign(kEndSize, 0);
  PutU64(&out.end, kEndOffImageBytes, image_bytes);
  PutU32(&out.end, kEndOffImageCrc, crc);
  PutU32(&out.end, kEndOffChunkCount, chunk_count);
  return out;
}

bool SnapshotAssembler::Fail(const char* why) {
  state_ = State::kFailed;
  error_ = why;
  return false;
}

void SnapshotAssembler::Reset() {
  state_ = State::kIdle;
  error_.clear();
  snap_ = ReplicaSnapshot{};
  image_.clear();
  expect_chunks_ = expect_bytes_ = chunks_applied_ = bytes_applied_ = 0;
  expect_crc_ = running_crc_ = 0;
}

bool SnapshotAssembler::Begin(const std::vector<uint8_t>& payload) {
  if (state_ != State::kIdle) {
    return Fail("snapshot begin out of protocol");
  }
  if (payload.size() < kBeginHeaderSize) {
    return Fail("snapshot begin payload truncated");
  }
  uint64_t rb_size = GetU64(payload, kBeginOffRbSize);
  uint32_t max_ranks = GetU32(payload, kBeginOffMaxRanks);
  uint32_t rank_count = GetU32(payload, kBeginOffRankCount);
  uint64_t file_map_len = GetU64(payload, kBeginOffFileMapLen);
  uint32_t epoll_count = GetU32(payload, kBeginOffEpollCount);
  if (rb_size == 0 || rb_size > kMaxSnapshotRbSize || (rb_size & kPageMask) != 0 ||
      max_ranks == 0 || max_ranks > kMaxSnapshotRanks || rank_count != max_ranks ||
      // The file map spans a whole number of pages (multi-page since the fleet
      // work raised the FD ceiling); bound it like the RB.
      file_map_len == 0 || file_map_len > kMaxSnapshotRbSize ||
      (file_map_len & kPageMask) != 0 ||
      // The spec says MUST-be-zero; tolerating garbage here would make the field
      // unusable for a future revision.
      GetU32(payload, kBeginOffReserved) != 0) {
    return Fail("snapshot begin metadata out of bounds");
  }
  uint64_t sync_log_size = GetU64(payload, kBeginOffSyncLogSize);
  uint64_t sync_tail = GetU64(payload, kBeginOffSyncTail);
  uint64_t sync_cursor = GetU64(payload, kBeginOffSyncCursor);
  uint64_t sync_image_len = GetU64(payload, kBeginOffSyncImageLen);
  if (sync_log_size == 0) {
    // No sync section: every sync field must be zero (an image without a log to
    // describe it is structurally corrupt).
    if (sync_tail != 0 || sync_cursor != 0 || sync_image_len != 0) {
      return Fail("snapshot sync section inconsistent with zero log size");
    }
  } else {
    if (sync_log_size <= kSyncLogOffEntries || sync_log_size > kMaxSnapshotRbSize) {
      return Fail("snapshot sync log size out of bounds");
    }
    uint64_t cap = (sync_log_size - kSyncLogOffEntries) / kSyncLogEntrySize;
    uint64_t occupied = std::min(sync_tail, cap);
    if (cap == 0 || sync_image_len != occupied * kSyncLogEntrySize ||
        sync_cursor > sync_tail) {
      return Fail("snapshot sync section out of bounds");
    }
  }
  uint64_t variable = static_cast<uint64_t>(rank_count) * 16 + file_map_len +
                      static_cast<uint64_t>(epoll_count) * 16 + sync_image_len;
  if (payload.size() != kBeginHeaderSize + variable) {
    return Fail("snapshot begin payload size mismatch");
  }

  snap_.rb_size = rb_size;
  snap_.max_ranks = static_cast<int>(max_ranks);
  snap_.lockstep_cursor = GetU64(payload, kBeginOffLockstep);
  snap_.sync_log_size = sync_log_size;
  snap_.sync_tail = sync_tail;
  snap_.sync_read_cursor = sync_cursor;
  expect_bytes_ = GetU64(payload, kBeginOffImageBytes);
  expect_crc_ = GetU32(payload, kBeginOffImageCrc);
  expect_chunks_ = GetU32(payload, kBeginOffChunkCount);
  if (expect_bytes_ > rb_size) {
    return Fail("snapshot image larger than the RB it describes");
  }
  size_t pos = kBeginHeaderSize;
  for (uint32_t r = 0; r < rank_count; ++r) {
    snap_.cursors.push_back(GetU64(payload, pos));
    snap_.seqs.push_back(GetU64(payload, pos + 8));
    pos += 16;
  }
  snap_.file_map.assign(payload.begin() + static_cast<long>(pos),
                        payload.begin() + static_cast<long>(pos + file_map_len));
  pos += file_map_len;
  for (uint32_t i = 0; i < epoll_count; ++i) {
    EpollShadowTriple t;
    t.epfd = static_cast<int32_t>(GetU32(payload, pos));
    t.fd = static_cast<int32_t>(GetU32(payload, pos + 4));
    t.data = GetU64(payload, pos + 8);
    snap_.epoll.push_back(t);
    pos += 16;
  }
  snap_.sync_image.assign(payload.begin() + static_cast<long>(pos),
                          payload.begin() + static_cast<long>(pos + sync_image_len));
  image_.assign(rb_size, 0);
  state_ = State::kAssembling;
  return true;
}

bool SnapshotAssembler::AddChunk(const std::vector<uint8_t>& payload) {
  if (state_ != State::kAssembling) {
    return Fail("snapshot chunk out of protocol");
  }
  if (payload.size() < kChunkHeaderSize) {
    return Fail("snapshot chunk payload truncated");
  }
  uint64_t offset = GetU64(payload, kChunkOffOffset);
  uint32_t len = GetU32(payload, kChunkOffLen);
  if (len != payload.size() - kChunkHeaderSize || len == 0 ||
      len > kSnapshotChunkBytes || offset > image_.size() ||
      len > image_.size() - offset || GetU32(payload, kChunkOffReserved) != 0) {
    return Fail("snapshot chunk out of bounds");
  }
  if (chunks_applied_ >= expect_chunks_) {
    return Fail("more snapshot chunks than announced");
  }
  running_crc_ = Crc32(payload.data(), payload.size(), running_crc_);
  std::memcpy(image_.data() + offset, payload.data() + kChunkHeaderSize, len);
  ++chunks_applied_;
  bytes_applied_ += len;
  return true;
}

bool SnapshotAssembler::End(const std::vector<uint8_t>& payload) {
  if (state_ != State::kAssembling) {
    return Fail("snapshot end out of protocol");
  }
  if (payload.size() != kEndSize) {
    return Fail("snapshot end payload malformed");
  }
  if (GetU64(payload, kEndOffImageBytes) != expect_bytes_ ||
      GetU32(payload, kEndOffChunkCount) != expect_chunks_ ||
      GetU32(payload, kEndOffImageCrc) != expect_crc_) {
    return Fail("snapshot end disagrees with begin");
  }
  if (chunks_applied_ != expect_chunks_ || bytes_applied_ != expect_bytes_) {
    return Fail("snapshot truncated: chunk or byte count short of announced");
  }
  if (running_crc_ != expect_crc_) {
    return Fail("snapshot image CRC mismatch");
  }
  state_ = State::kComplete;
  return true;
}

// --- Mirror restoration ------------------------------------------------------------

namespace {

void WakeEntryQueue(Kernel* kernel, IpMon* mon, const RbView& rb, uint64_t entry_off) {
  uint64_t off_in_page = 0;
  Page* frame = mon->process()->mem().ResolveFrame(rb.AddrOf(entry_off + kRbOffState),
                                                   &off_in_page);
  if (frame != nullptr) {
    kernel->futex().QueueFor(frame, off_in_page).Wake();
  }
}

SnapshotApplyResult ApplyFail(const char* why) {
  SnapshotApplyResult r;
  r.ok = false;
  r.error = why;
  return r;
}

}  // namespace

SnapshotApplyResult ApplySnapshotToMirror(Kernel* kernel, IpMon* mon,
                                          SyncAgent* sync_agent,
                                          const ReplicaSnapshot& snap,
                                          const std::vector<uint8_t>& image) {
  RbView rb = mon->rb();
  if (!rb.valid()) {
    return ApplyFail("replica RB mirror not initialized");
  }
  if (snap.rb_size != rb.size() || snap.max_ranks != rb.max_ranks() ||
      image.size() != rb.size() ||
      snap.cursors.size() != static_cast<size_t>(snap.max_ranks)) {
    return ApplyFail("snapshot geometry does not match the replica RB");
  }
  // File-map cross-check: the FD metadata is monitor control-plane state every
  // replica derives from the same monitored history; a byte diverging means this
  // replica's stream is not the leader's and the join must be refused.
  if (snap.file_map.size() != mon->file_map()->size_bytes()) {
    return ApplyFail("file map diverged from the leader checkpoint");
  }
  size_t fm_off = 0;
  for (const PageRef& fm_page : mon->file_map()->pages()) {
    if (!std::equal(fm_page->bytes.begin(), fm_page->bytes.end(),
                    snap.file_map.begin() + static_cast<long>(fm_off))) {
      return ApplyFail("file map diverged from the leader checkpoint");
    }
    fm_off += fm_page->bytes.size();
  }
  // Sync-agent log (v3): the checkpoint and the replica must agree on whether a
  // record/replay agent runs at all, and the log restore's own validation
  // (geometry, replay cursor, per-slot divergence) gates the join like the file
  // map does. ApplyLogSnapshot mutates only after every check passed.
  bool replica_has_sync = sync_agent != nullptr && sync_agent->log_valid();
  if (snap.sync_log_size != 0 && !replica_has_sync) {
    return ApplyFail("snapshot carries a sync log the replica does not replay");
  }
  if (snap.sync_log_size == 0 && replica_has_sync) {
    return ApplyFail("snapshot lacks the sync log this replica replays");
  }

  SnapshotApplyResult result;
  result.ok = true;
  if (replica_has_sync) {
    const char* sync_err = sync_agent->ApplyLogSnapshot(
        snap.sync_log_size, snap.sync_tail, snap.sync_read_cursor, snap.sync_image);
    if (sync_err != nullptr) {
      return ApplyFail(sync_err);
    }
    result.sync_slots_restored = snap.sync_image.size() / kSyncLogEntrySize;
  }
  // Epoll-shadow coverage: keys the replica has not recorded yet are legitimate
  // consumer lag (its epoll_ctl replay may trail the leader), so they are counted,
  // not fatal; the divergence checks catch real mismatches at the next entry.
  for (const EpollShadowTriple& t : snap.epoll) {
    uint64_t local_data = 0;
    if (!mon->LookupEpollData(t.epfd, t.fd, &local_data)) {
      ++result.epoll_lag;
    }
  }

  // Global header (signals-pending flag, generation) exactly as the leader saw it.
  rb.WriteBytes(0, image.data(), kRbGlobalHeaderSize);

  for (int r = 0; r < snap.max_ranks; ++r) {
    uint64_t data_start = rb.RankDataStart(r);
    uint64_t data_end = rb.RankDataEnd(r);
    uint64_t cursor = snap.cursors[static_cast<size_t>(r)];
    if (cursor < data_start || cursor > data_end) {
      return ApplyFail("snapshot cursor outside the rank sub-buffer");
    }
    rb.WriteBytes(rb.RankStart(r), image.data() + rb.RankStart(r), kRbRankHeaderSize);

    // Replay the published prefix with the live-path discipline: body first (the
    // mirror's own state and waiter words preserved), state word flipped last and
    // only forward, one wake per entry.
    uint64_t off = data_start;
    while (off + kRbEntryHeaderSize <= cursor) {
      uint32_t state = ImageU32(image, off + kRbOffState);
      if (state == kRbEmpty) {
        break;  // In-flight tail entry: the next data frame completes it.
      }
      uint64_t total = ImageU64(image, off + kRbOffTotalSize);
      if (state > kRbResultsReady || total < kRbEntryHeaderSize || (total & 7) != 0 ||
          total > cursor - off) {
        return ApplyFail("snapshot image has a malformed entry chain");
      }
      rb.WriteBytes(off + kRbOffSysno, image.data() + off + kRbOffSysno,
                    total - kRbOffSysno);
      if (state > rb.ReadU32(off + kRbOffState)) {
        rb.WriteU32(off + kRbOffState, state);
      }
      WakeEntryQueue(kernel, mon, rb, off);
      ++result.entries_restored;
      off += total;
    }

    // The stale tail: everything beyond the leader's published prefix must read
    // as the leader's RB does (zeros — the region is zeroed at creation and at
    // every globally synchronized reset). The resume entry's state word is reset
    // from the image and its waiter word preserved: a consumer parked there keeps
    // its registration and simply finds the entry not published yet.
    if (off + 8 <= data_end) {
      rb.WriteU32(off + kRbOffState, ImageU32(image, off + kRbOffState));
      if (off + 8 < data_end) {
        rb.Zero(off + 8, data_end - off - 8);
      }
      WakeEntryQueue(kernel, mon, rb, off);
    } else if (off < data_end) {
      rb.Zero(off, data_end - off);  // Sub-entry-header residue: no consumer state.
    }
  }
  return result;
}

}  // namespace remon

// Benchmark load generators (ab / wrk / http_load / redis-benchmark analogs).
//
// Closed-loop clients: each of `connections` concurrent connections sends a request,
// reads the full response, and immediately sends the next (no think time) until a
// global request budget (ab-style) or a wall-clock duration (wrk-style) runs out.
// Clients run natively on the client machine; their completion statistics are the
// measurement the server benchmarks report.

#ifndef SRC_WORKLOADS_CLIENTS_H_
#define SRC_WORKLOADS_CLIENTS_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/kernel/guest.h"
#include "src/sim/time.h"

namespace remon {

struct ClientSpec {
  int connections = 16;
  int total_requests = 500;   // ab-style budget (ignored when duration > 0).
  DurationNs duration = 0;    // wrk-style run length.
  uint64_t request_bytes = 4096;  // Response size to ask for.
  uint32_t server_machine = 0;
  uint16_t port = 80;
};

// Filled in while the client runs (host-side measurement state).
struct ClientStats {
  int completed = 0;
  int errors = 0;
  uint64_t bytes_received = 0;  // Response bytes read (the response transcript size).
  TimeNs started = -1;
  TimeNs finished = -1;
  std::vector<DurationNs> latencies;  // Per-request.

  double Seconds() const {
    return started < 0 || finished < started
               ? 0.0
               : static_cast<double>(finished - started) / 1e9;
  }
  double Throughput() const {
    double s = Seconds();
    return s > 0 ? completed / s : 0.0;
  }
  DurationNs MeanLatency() const {
    if (latencies.empty()) {
      return 0;
    }
    DurationNs sum = 0;
    for (DurationNs l : latencies) {
      sum += l;
    }
    return sum / static_cast<DurationNs>(latencies.size());
  }
};

// The client program; `stats` must outlive the run.
ProgramFn ClientProgram(const ClientSpec& spec, ClientStats* stats);

// --- Open-loop swarms (scale-out load generation) ----------------------------------
//
// Unlike the closed-loop clients above, a swarm decouples arrival from service:
// connections arrive on a Poisson process at a configured rate whether or not
// earlier ones finished, which is what exposes tail latency under overload.
// Each arrival is one short-lived connection (connect, a few request/response
// rounds, close). Rates can step through phases to model spikes.

struct SwarmPhase {
  double rate = 0.0;        // Arrivals per second while this phase is active.
  DurationNs duration = 0;  // Phase length.
};

struct SwarmSpec {
  int connections = 10000;       // Total arrivals this program generates.
  double arrival_rate = 50000;   // Poisson rate (conn/s) when `phases` is empty.
  std::vector<SwarmPhase> phases;  // Piecewise-constant rate schedule (optional);
                                   // arrivals stop at the end of the last phase.
  int requests_per_connection = 1;
  uint64_t request_bytes = 512;  // Response size each request asks for.
  uint32_t server_machine = 0;   // Target (typically a tier VIP).
  uint16_t port = 80;
  uint64_t seed = 1;             // Arrival-process RNG seed (host-side, client-only).
  // FD-table guard: the spawner reaps finished connections before exceeding this
  // many in flight. Arrivals forced to wait are counted as `stalled` — a pure
  // open-loop run keeps this above the offered concurrency.
  int max_concurrent = 512;
};

// Filled in while the swarm runs (host-side measurement state).
struct SwarmStats {
  int arrived = 0;
  int completed = 0;   // Connections that finished every request cleanly.
  int requests = 0;    // Individual request/response rounds completed.
  int errors = 0;
  int stalled = 0;     // Arrivals delayed by the max_concurrent guard.
  uint64_t bytes_received = 0;
  TimeNs started = -1;
  TimeNs finished = -1;
  std::vector<DurationNs> latencies;  // Arrival-to-close per connection.

  double Seconds() const {
    return started < 0 || finished < started
               ? 0.0
               : static_cast<double>(finished - started) / 1e9;
  }
  double Throughput() const {  // Completed connections per second.
    double s = Seconds();
    return s > 0 ? completed / s : 0.0;
  }
  // p in [0, 100]; returns 0 on an empty sample.
  DurationNs Percentile(double p) const;
  // Folds another program's sample into this one (multi-process swarms).
  void Merge(const SwarmStats& o);
};

// The swarm program for one client process; `stats` must outlive the run.
// `on_done` (optional) fires on the host after the last connection closed —
// the scale-out runner uses it to stop autoscale timers so the simulation drains.
ProgramFn SwarmProgram(const SwarmSpec& spec, SwarmStats* stats,
                       std::function<void()> on_done = nullptr);

}  // namespace remon

#endif  // SRC_WORKLOADS_CLIENTS_H_

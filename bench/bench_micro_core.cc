// Micro-benchmarks (google-benchmark) of the hot in-library operations: replication
// buffer appends, argument-signature serialization, policy classification, token
// issue/verify, event queue throughput, and guest memory access.

#include <benchmark/benchmark.h>

#include "src/core/broker.h"
#include "src/core/file_map.h"
#include "src/core/policy.h"
#include "src/core/replication_buffer.h"
#include "src/kernel/kernel.h"
#include "src/kernel/syscall_meta.h"
#include "src/mem/address_space.h"
#include "src/mem/shm.h"
#include "src/net/network.h"
#include "src/sim/event_queue.h"
#include "src/vfs/fs.h"

namespace remon {
namespace {

// A tiny world providing a process with mapped memory for RB/signature benches.
struct MicroWorld {
  MicroWorld() : sim(1), net(&sim), kernel(&sim, &fs, &net, &shm) {
    Rng rng(7);
    LayoutPlanner planner(&rng);
    process = kernel.CreateProcess("micro", 0, planner.PlanFor(0));
    rb_base = 0x7000'0000'0000ULL;
    process->mem().MapFixed(rb_base, 1 << 20, kProtRead | kProtWrite, true, "rb");
    view = RbView(process, rb_base, 1 << 20, 4);
  }
  Simulator sim;
  Filesystem fs;
  Network net;
  ShmRegistry shm;
  Kernel kernel;
  Process* process;
  GuestAddr rb_base;
  RbView view;
};

void BM_RbCommitArgs(benchmark::State& state) {
  MicroWorld w;
  std::vector<uint8_t> sig(static_cast<size_t>(state.range(0)), 0xab);
  uint64_t off = w.view.RankDataStart(0);
  for (auto _ : state) {
    RbEntryOps::CommitArgs(w.view, off, Sys::kRead, kRbFlagMasterCall, 1, 512, sig);
    benchmark::DoNotOptimize(w.view);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RbCommitArgs)->Arg(64)->Arg(1024)->Arg(16384);

void BM_RbCommitResults(benchmark::State& state) {
  MicroWorld w;
  std::vector<uint8_t> sig(64, 0xab);
  std::vector<uint8_t> payload(static_cast<size_t>(state.range(0)), 0xcd);
  uint64_t off = w.view.RankDataStart(0);
  RbEntryOps::CommitArgs(w.view, off, Sys::kRead, kRbFlagMasterCall, 1, 512, sig);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RbEntryOps::CommitResults(w.view, off, 42, payload));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RbCommitResults)->Arg(64)->Arg(4096);

void BM_SerializeCallSignature(benchmark::State& state) {
  MicroWorld w;
  GuestAddr buf = w.rb_base + 4096;
  SyscallRequest req{Sys::kWrite, {3, buf, static_cast<uint64_t>(state.range(0)), 0, 0, 0}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(SerializeCallSignature(w.process, req));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SerializeCallSignature)->Arg(64)->Arg(1024)->Arg(16384);

void BM_CollectOutRegions(benchmark::State& state) {
  MicroWorld w;
  GuestAddr buf = w.rb_base + 4096;
  SyscallRequest req{Sys::kRead, {3, buf, 4096, 0, 0, 0}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(CollectOutRegions(w.process, req, 4096));
  }
}
BENCHMARK(BM_CollectOutRegions);

void BM_PolicyClassify(benchmark::State& state) {
  RelaxationPolicy policy(PolicyLevel::kSocketRw);
  uint32_t i = 1;
  for (auto _ : state) {
    Sys nr = static_cast<Sys>(1 + (i++ % (kNumSyscalls - 1)));
    benchmark::DoNotOptimize(policy.AllowsUnmonitored(nr, FdType::kSocket));
  }
}
BENCHMARK(BM_PolicyClassify);

void BM_TokenIssueVerify(benchmark::State& state) {
  MicroWorld w;
  IkBroker broker(&w.kernel, RelaxationPolicy(PolicyLevel::kSocketRw));
  Thread* t = w.kernel.SpawnThread(w.process, [](Guest& g) -> GuestTask<void> { co_return; });
  t->cur_req.nr = Sys::kRead;
  for (auto _ : state) {
    uint64_t token = broker.IssueToken(t);
    benchmark::DoNotOptimize(broker.VerifyToken(t, token, Sys::kRead));
  }
}
BENCHMARK(BM_TokenIssueVerify);

void BM_EventQueueScheduleRun(benchmark::State& state) {
  EventQueue q;
  for (auto _ : state) {
    q.ScheduleAfter(1, [] {});
    q.RunOne();
  }
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_AddressSpaceWrite(benchmark::State& state) {
  AddressSpace as;
  as.MapFixed(0x10000, 1 << 20, kProtRead | kProtWrite, false, "bench");
  std::vector<uint8_t> data(static_cast<size_t>(state.range(0)), 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(as.Write(0x10000, data.data(), data.size()));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AddressSpaceWrite)->Arg(64)->Arg(4096)->Arg(65536);

void BM_FileMapLookup(benchmark::State& state) {
  FileMap fm;
  for (int fd = 0; fd < 64; ++fd) {
    fm.Set(fd, FdType::kSocket, false);
  }
  int fd = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fm.TypeOf(fd++ % 64));
  }
}
BENCHMARK(BM_FileMapLookup);

}  // namespace
}  // namespace remon

BENCHMARK_MAIN();

#include "src/core/sync_agent.h"

#include <algorithm>
#include <cstring>

#include "src/core/await.h"
#include "src/core/rb_transport.h"
#include "src/sim/check.h"

namespace remon {

GuestTask<void> SyncAgent::Initialize(Guest& g) {
  REMON_CHECK_MSG(capacity() > 0, "sync agent: log too small for any entry");
  REMON_CHECK_MSG(config_.num_replicas <= kSyncLogMaxReplicas,
                  "sync agent: more replicas than header cursor words");
  int64_t shmid = co_await g.Shmget(kSyncShmKey, config_.log_size, kIpcCreat);
  REMON_CHECK_MSG(shmid >= 0, "sync agent: shmget failed");
  int64_t addr = co_await g.Shmat(static_cast<int>(shmid));
  REMON_CHECK_MSG(addr > 0, "sync agent: shmat failed");
  log_ = RbView(g.process(), static_cast<GuestAddr>(addr), config_.log_size, 1);
  g.process()->sync_agent = this;  // Workloads reach their replica's agent here.
  int64_t rc = co_await g.Syscall(Sys::kRemonSyncRegister, static_cast<uint64_t>(addr));
  REMON_CHECK(rc == 0);
}

WaitQueue* SyncAgent::LogQueue() {
  uint64_t off_in_page = 0;
  Page* frame =
      log_.process()->mem().ResolveFrame(log_.AddrOf(kSyncLogOffTail), &off_in_page);
  REMON_CHECK(frame != nullptr);
  return &kernel_->futex().QueueFor(frame, off_in_page);
}

uint64_t SyncAgent::tail() const { return log_.ReadU64(kSyncLogOffTail); }

uint64_t SyncAgent::MinPeerReadCursor() const {
  // The master gates wraparound on the slowest replica's replay cursor, using
  // only acknowledged state: co-located slaves publish their cursor into the
  // shared segment's header words, remote replicas' cursors arrive piggybacked
  // on the transport's acks. A dead remote's cursor stays frozen at its last
  // acknowledged value — overwriting what a to-be-re-seeded replica never
  // consumed would corrupt the replacement's replay.
  uint64_t min_cursor = ~uint64_t{0};
  bool any = false;
  for (int i = 1; i < config_.num_replicas; ++i) {
    uint64_t cursor = transport_ != nullptr && transport_->IsRemote(i)
                          ? transport_->SyncCursorFor(i)
                          : log_.ReadU64(kSyncLogOffCursors +
                                         8 * static_cast<uint64_t>(i - 1));
    min_cursor = std::min(min_cursor, cursor);
    any = true;
  }
  return any ? min_cursor : tail();
}

void SyncAgent::OnSlaveConsumed() { wrap_queue_.Wake(); }

void SyncAgent::FlushLogStream() {
  if (transport_ == nullptr || pending_.empty()) {
    return;
  }
  transport_->SendSyncLog(pending_start_, pending_);
  pending_.clear();
}

GuestTask<void> SyncAgent::BeforeAcquire(Guest& g, uint32_t object_id) {
  REMON_CHECK(log_.valid());
  Thread* t = g.thread();
  uint32_t rank = static_cast<uint32_t>(t->rank());
  uint64_t cap = capacity();
  // A small in-process cost per synchronization operation (the agent's bookkeeping).
  co_await ThreadCost{t, 120};

  if (is_master()) {
    // Transport backpressure gates the append itself, not only the flush points:
    // a master must not run the sync stream arbitrarily far ahead of what a slow
    // link has acknowledged. Flush before parking — the frame that fills the
    // in-flight window is also the one whose ack will wake us — and feed the
    // stall into the adaptive batch window's AIMD exactly like entry frames do.
    while (transport_ != nullptr && transport_->Stalled()) {
      FlushLogStream();
      ++kernel_->stats().sync_log_append_stalls;
      if (on_backpressure_) {
        on_backpressure_(static_cast<int>(rank));
      }
      co_await WaitOn{t, transport_->stall_queue()};
    }

    // Wraparound gate: op `seq` reuses the slot op `seq - cap` occupied, so the
    // append must wait until every replica has replayed past that occupant. The
    // pending stream flushes first — a remote replica cannot drain the log this
    // thread is parked on while its records sit in the coalescing buffer.
    uint64_t seq = tail();
    while (seq >= cap + MinPeerReadCursor()) {
      FlushLogStream();
      ++kernel_->stats().sync_log_wrap_stalls;
      co_await WaitOn{t, &wrap_queue_};
      seq = tail();
    }

    // Publication discipline: slot bytes first, the tail word last.
    uint64_t entry_off = kSyncLogOffEntries + (seq % cap) * kSyncLogEntrySize;
    log_.WriteU32(entry_off, object_id);
    log_.WriteU32(entry_off + 4, rank);
    log_.WriteU64(entry_off + 8, seq);
    log_.WriteU64(kSyncLogOffTail, seq + 1);
    ++ops_recorded_;
    ++kernel_->stats().sync_ops_recorded;
    LogQueue()->Wake();

    if (transport_ != nullptr) {
      if (pending_.empty()) {
        pending_start_ = seq;
      }
      pending_.push_back(RbSyncLogRecord{object_id, rank});
      // The adaptive RB batch window doubles as the sync-log coalescing window;
      // IP-MON's flush points and the kernel park hook bound the deferral.
      int window = window_fn_ ? std::max(1, window_fn_(static_cast<int>(rank))) : 1;
      if (pending_.size() >= static_cast<size_t>(window)) {
        FlushLogStream();
      }
    }
    co_return;
  }

  // Slave: entries are consumed strictly in log order by whichever thread they name;
  // the per-replica cursor is shared by all of this replica's threads. Wait until the
  // head op is ours (a peer consuming its op wakes us to re-check).
  for (;;) {
    uint64_t log_tail = log_.ReadU64(kSyncLogOffTail);
    if (read_cursor_ < log_tail) {
      uint64_t entry_off =
          kSyncLogOffEntries + (read_cursor_ % cap) * kSyncLogEntrySize;
      uint32_t obj = log_.ReadU32(entry_off);
      uint32_t r = log_.ReadU32(entry_off + 4);
      uint64_t seq = log_.ReadU64(entry_off + 8);
      // The wraparound gate makes a stale slot impossible: the master may not
      // overwrite op `read_cursor_` before this replica consumed it.
      REMON_CHECK_MSG(seq == read_cursor_, "sync agent: stale slot under the cursor");
      if (obj == object_id && r == rank) {
        ++read_cursor_;
        ++ops_replayed_;
        ++kernel_->stats().sync_ops_replayed;
        // Publish the advanced cursor into the segment header — the only place a
        // co-located master's wraparound gate reads it from.
        log_.WriteU64(kSyncLogOffCursors +
                          8 * static_cast<uint64_t>(config_.replica_index - 1),
                      read_cursor_);
        if (on_consumed_ != nullptr) {
          // Remote replica: the cursor travels to the master piggybacked on acks.
          // An unsolicited cursor ack is only worth its frame when the master
          // could actually be parked on this replica — the log full up to (or
          // past) the slot just freed; otherwise the next applied frame's ack
          // carries the cursor for free.
          if (log_tail >= cap + read_cursor_ - 1) {
            on_consumed_();
          }
        } else if (!peers_.empty() && peers_[0] != nullptr && peers_[0] != this) {
          peers_[0]->OnSlaveConsumed();  // A master parked on a full log re-checks.
        }
        LogQueue()->Wake();  // Another slave thread may now be at the head.
        co_return;
      }
    }
    co_await WaitOn{t, LogQueue()};
  }
}

bool SyncAgent::ApplyRemoteLog(uint64_t start_index,
                               const std::vector<RbSyncLogRecord>& records) {
  if (!log_.valid() || records.empty()) {
    return false;
  }
  uint64_t cap = capacity();
  uint64_t log_tail = tail();
  // The stream is reliable and in-order and every flush starts where the previous
  // one ended, so a frame starting past the mirror tail belongs to a different
  // log history: reject. A frame starting *behind* the tail is legitimate —
  // replicas co-located on one machine share the mirror segment, so each agent
  // sees the other's applications — but only as an exact replay: every
  // overlapping record must match the slot it claims (same op, or superseded by
  // a whole number of laps), or the streams have diverged.
  if (start_index > log_tail || records.size() > cap) {
    return false;
  }
  for (size_t k = 0; k < records.size(); ++k) {
    uint64_t seq = start_index + static_cast<uint64_t>(k);
    uint64_t entry_off = kSyncLogOffEntries + (seq % cap) * kSyncLogEntrySize;
    if (seq < log_tail) {
      uint64_t slot_seq = log_.ReadU64(entry_off + 8);
      if (slot_seq == seq) {
        if (log_.ReadU32(entry_off) != records[k].object_id ||
            log_.ReadU32(entry_off + 4) != records[k].rank) {
          return false;  // Same op, different content: diverged.
        }
      } else if (slot_seq < seq || (slot_seq - seq) % cap != 0) {
        return false;  // Neither this op nor a later lap over its slot.
      }
      continue;  // Already applied (possibly by a co-located replica's agent).
    }
    log_.WriteU32(entry_off, records[k].object_id);
    log_.WriteU32(entry_off + 4, records[k].rank);
    log_.WriteU64(entry_off + 8, seq);
  }
  // Same publication discipline as the master's append: tail word last,
  // forward-only, then wake parked consumers.
  uint64_t new_tail = start_index + records.size();
  if (new_tail > log_tail) {
    log_.WriteU64(kSyncLogOffTail, new_tail);
  }
  LogQueue()->Wake();
  return true;
}

std::vector<uint8_t> SyncAgent::CaptureLogImage() const {
  REMON_CHECK(log_.valid());
  uint64_t occupied = std::min(tail(), capacity());
  std::vector<uint8_t> image(occupied * kSyncLogEntrySize);
  if (!image.empty()) {
    log_.ReadBytes(kSyncLogOffEntries, image.data(), image.size());
  }
  return image;
}

std::vector<uint8_t> SyncAgent::CaptureLogDelta(uint64_t from) const {
  REMON_CHECK(log_.valid());
  uint64_t cap = capacity();
  uint64_t log_tail = tail();
  REMON_CHECK_MSG(from <= log_tail && log_tail - from <= cap,
                  "sync delta capture outside the live lap");
  std::vector<uint8_t> image((log_tail - from) * kSyncLogEntrySize);
  for (uint64_t k = 0; from + k < log_tail; ++k) {
    uint64_t entry_off =
        kSyncLogOffEntries + ((from + k) % cap) * kSyncLogEntrySize;
    log_.ReadBytes(entry_off, image.data() + k * kSyncLogEntrySize,
                   kSyncLogEntrySize);
  }
  return image;
}

const char* SyncAgent::ApplyLogSnapshot(uint64_t log_size, uint64_t snap_tail,
                                        uint64_t snap_read_cursor,
                                        const std::vector<uint8_t>& image) {
  if (!log_.valid()) {
    return "sync log mirror not initialized";
  }
  if (log_size != config_.log_size) {
    return "sync log geometry does not match the replica";
  }
  uint64_t cap = capacity();
  uint64_t occupied = std::min(snap_tail, cap);
  if (image.size() != occupied * kSyncLogEntrySize) {
    return "sync log image size disagrees with its tail";
  }
  uint64_t local_tail = tail();
  // The leader captured this replica's replay cursor at checkpoint time (the wire
  // carries it); disagreement means the checkpoint was cut for a different replica
  // history and the join must be refused.
  if (snap_read_cursor != read_cursor_) {
    return "sync read cursor diverged from the leader checkpoint";
  }
  if (snap_read_cursor > snap_tail) {
    return "sync read cursor past the leader tail";
  }
  // Divergence cross-check before any mutation: wherever the mirror and the
  // image both hold an op for a slot, it must be the same op byte for byte or
  // one side a whole number of laps ahead of the other — the two histories are
  // prefixes of one master stream or the join is refused. The mirror being
  // AHEAD of the checkpoint is legitimate: a co-located replica's agent shares
  // the mirror segment and may have applied newer frames between the leader's
  // capture and this join.
  uint64_t local_occupied = std::min(local_tail, cap);
  uint8_t local_slot[kSyncLogEntrySize];
  for (uint64_t s = 0; s < std::min(local_occupied, occupied); ++s) {
    uint64_t off = kSyncLogOffEntries + s * kSyncLogEntrySize;
    log_.ReadBytes(off, local_slot, kSyncLogEntrySize);
    const uint8_t* image_slot = image.data() + s * kSyncLogEntrySize;
    uint64_t local_seq = 0;
    uint64_t image_seq = 0;
    std::memcpy(&local_seq, local_slot + 8, 8);
    std::memcpy(&image_seq, image_slot + 8, 8);
    if (image_seq == local_seq) {
      if (std::memcmp(local_slot, image_slot, kSyncLogEntrySize) != 0) {
        return "sync log diverged from the leader checkpoint";
      }
    } else {
      uint64_t newer = std::max(image_seq, local_seq);
      uint64_t older = std::min(image_seq, local_seq);
      if ((newer - older) % cap != 0) {
        return "sync log slot sequence diverged from the leader checkpoint";
      }
    }
  }
  if (snap_tail >= local_tail) {
    // Restore with the live publication discipline: slots first, tail word last
    // (forward-only by this branch's condition), then wake parked consumers.
    if (!image.empty()) {
      log_.WriteBytes(kSyncLogOffEntries, image.data(), image.size());
    }
    log_.WriteU64(kSyncLogOffTail, snap_tail);
  }
  // A mirror already past the checkpoint needs no writes — the verification
  // above confirmed the checkpoint is a prefix of what the mirror holds.
  LogQueue()->Wake();
  return nullptr;
}

const char* SyncAgent::ApplyLogDelta(uint64_t log_size, uint64_t snap_tail,
                                     uint64_t sync_from, uint64_t snap_read_cursor,
                                     const std::vector<uint8_t>& image) {
  if (!log_.valid()) {
    return "sync log mirror not initialized";
  }
  if (log_size != config_.log_size) {
    return "sync log geometry does not match the replica";
  }
  uint64_t cap = capacity();
  if (sync_from > snap_tail || snap_tail - sync_from > cap) {
    return "sync delta slice wrapped past the replica cursor";
  }
  if (image.size() != (snap_tail - sync_from) * kSyncLogEntrySize) {
    return "sync delta image size disagrees with its slice";
  }
  if (snap_read_cursor != read_cursor_) {
    return "sync read cursor diverged from the leader checkpoint";
  }
  if (snap_read_cursor > snap_tail) {
    return "sync read cursor past the leader tail";
  }
  if (sync_from > read_cursor_) {
    // Ops in (read_cursor_, sync_from) would never reach this replica: the slice
    // must start at or before what it still has to replay.
    return "sync delta starts past the replica replay cursor";
  }
  uint64_t local_tail = tail();
  // Validation before any mutation: every slice record must name the op its
  // position claims (embedded seq), and wherever the mirror already holds an op
  // for the same slot the two must agree byte for byte or differ by whole laps
  // (the lap-congruence rule ApplyRemoteLog and ApplyLogSnapshot use).
  uint8_t local_slot[kSyncLogEntrySize];
  for (uint64_t k = 0; k < snap_tail - sync_from; ++k) {
    uint64_t seq = sync_from + k;
    const uint8_t* image_slot = image.data() + k * kSyncLogEntrySize;
    uint64_t image_seq = 0;
    std::memcpy(&image_seq, image_slot + 8, 8);
    if (image_seq != seq) {
      return "sync delta slot names the wrong op";
    }
    if (seq < local_tail) {
      uint64_t off = kSyncLogOffEntries + (seq % cap) * kSyncLogEntrySize;
      log_.ReadBytes(off, local_slot, kSyncLogEntrySize);
      uint64_t local_seq = 0;
      std::memcpy(&local_seq, local_slot + 8, 8);
      if (local_seq == seq) {
        if (std::memcmp(local_slot, image_slot, kSyncLogEntrySize) != 0) {
          return "sync log diverged from the leader checkpoint";
        }
      } else if (local_seq < seq || (local_seq - seq) % cap != 0) {
        return "sync log slot sequence diverged from the leader checkpoint";
      }
    }
  }
  // Restore with the live publication discipline: slots first (skipping ops the
  // mirror already published — a co-located agent may have applied newer frames
  // since the capture), tail word last (forward-only), wake parked consumers.
  for (uint64_t k = 0; k < snap_tail - sync_from; ++k) {
    uint64_t seq = sync_from + k;
    if (seq < local_tail) {
      continue;
    }
    uint64_t off = kSyncLogOffEntries + (seq % cap) * kSyncLogEntrySize;
    log_.WriteBytes(off, image.data() + k * kSyncLogEntrySize, kSyncLogEntrySize);
  }
  if (snap_tail > local_tail) {
    log_.WriteU64(kSyncLogOffTail, snap_tail);
  }
  LogQueue()->Wake();
  return nullptr;
}

}  // namespace remon

// Security tests: the attack scenarios of paper §4, plus the contrasts between the
// designs (ReMon vs the VARAN-like reliability monitor).

#include <gtest/gtest.h>

#include "src/core/remon.h"
#include "tests/test_util.h"

namespace remon {
namespace {

RemonOptions RemonAt(PolicyLevel level, int replicas = 2) {
  RemonOptions opts;
  opts.mode = MveeMode::kRemon;
  opts.replicas = replicas;
  opts.level = level;
  return opts;
}

// --- Authorization tokens (§3.1, §4 "Unmonitored execution of system calls") ----

TEST(SecurityTest, TokensAreOneTime) {
  SimWorld w(101);
  Remon mvee(&w.kernel, RemonAt(PolicyLevel::kNonsocketRw));
  mvee.Launch([](Guest& g) -> GuestTask<void> {
    co_await g.Getpid();
    co_return;
  });
  w.Run();
  Thread* t = mvee.master()->threads[0];
  t->cur_req.nr = Sys::kRead;
  uint64_t token = mvee.broker()->IssueToken(t);
  EXPECT_TRUE(mvee.broker()->VerifyToken(t, token, Sys::kRead));
  // Replay: the same token must not verify twice.
  EXPECT_FALSE(mvee.broker()->VerifyToken(t, token, Sys::kRead));
}

TEST(SecurityTest, TokenBoundToForwardedCall) {
  // "If IP-MON executes a different system call ... IK-B revokes the token."
  SimWorld w(102);
  Remon mvee(&w.kernel, RemonAt(PolicyLevel::kNonsocketRw));
  mvee.Launch([](Guest& g) -> GuestTask<void> { co_return; });
  w.Run();
  Thread* t = mvee.master()->threads[0];
  t->cur_req.nr = Sys::kRead;
  uint64_t token = mvee.broker()->IssueToken(t);
  // The attacker restarts a *different* call with a stolen valid token.
  EXPECT_FALSE(mvee.broker()->VerifyToken(t, token, Sys::kOpen));
  // And the token is now revoked even for the right call.
  EXPECT_FALSE(mvee.broker()->VerifyToken(t, token, Sys::kRead));
  EXPECT_GT(w.sim.stats().tokens_revoked, 0u);
}

TEST(SecurityTest, TokensAreUnpredictable) {
  // 64-bit tokens from the kernel PRNG: distinct across issues (guessing argument
  // of §4; the full entropy argument is over the PRNG).
  SimWorld w(103);
  Remon mvee(&w.kernel, RemonAt(PolicyLevel::kNonsocketRw));
  mvee.Launch([](Guest& g) -> GuestTask<void> { co_return; });
  w.Run();
  Thread* t = mvee.master()->threads[0];
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t token = mvee.broker()->IssueToken(t);
    EXPECT_NE(token, 0u);
    seen.insert(token);
  }
  EXPECT_EQ(seen.size(), 1000u);
}

// --- RB hiding (§3.1, §4 "Manipulating the RB") --------------------------------

TEST(SecurityTest, RbAddressGuessingFaults) {
  // An attacker guessing the RB address with a wild read takes SIGSEGV and the
  // divergence is detected — the 24-bits-of-entropy argument's enforcement side.
  SimWorld w(104);
  Remon mvee(&w.kernel, RemonAt(PolicyLevel::kNonsocketRw));
  mvee.Launch([](Guest& g) -> GuestTask<void> {
    co_await g.Getpid();
    if (g.process()->replica_index == 0) {
      // Compromised master probes a guessed RB location.
      uint8_t probe = 0;
      co_await g.TryPeek(0x7f12'3456'7000ULL, &probe, 1);
    }
    co_await g.Getpid();
  });
  w.Run();
  EXPECT_TRUE(mvee.divergence_detected());
}

TEST(SecurityTest, RbMappedAtDifferentAddressesPerReplica) {
  SimWorld w(105);
  Remon mvee(&w.kernel, RemonAt(PolicyLevel::kNonsocketRw, 3));
  mvee.Launch([](Guest& g) -> GuestTask<void> {
    co_await g.Getpid();
    co_return;
  });
  w.Run();
  GuestAddr a0 = mvee.ipmon(0)->rb().base();
  GuestAddr a1 = mvee.ipmon(1)->rb().base();
  GuestAddr a2 = mvee.ipmon(2)->rb().base();
  EXPECT_NE(a0, 0u);
  EXPECT_NE(a0, a1);
  EXPECT_NE(a1, a2);
  EXPECT_NE(a0, a2);
}

TEST(SecurityTest, RbTamperingByCompromisedMasterDetected) {
  // The attacker knows the RB address (somehow) and rewrites a logged entry to feed
  // the slaves fake results. The slaves' argument check fires on the next mismatch,
  // or the tampering corrupts the protocol — either way the MVEE halts.
  SimWorld w(106);
  Remon mvee(&w.kernel, RemonAt(PolicyLevel::kNonsocketRw));
  mvee.Launch([&mvee](Guest& g) -> GuestTask<void> {
    int64_t fd = co_await g.Open("/tmp/t", kO_CREAT | kO_RDWR);
    GuestAddr buf = g.Alloc(64);
    g.Poke(buf, "AAAA", 4);
    co_await g.Write(static_cast<int>(fd), buf, 4);
    if (g.process()->replica_index == 0) {
      // Master tampers with its own upcoming entry region: corrupt the rank-0
      // sub-buffer (host-level model of an arbitrary-write primitive).
      RbView rb = mvee.ipmon(0)->rb();
      rb.WriteU32(rb.RankDataStart(0) + kRbOffState, 0xdead);
    }
    co_await g.Write(static_cast<int>(fd), buf, 4);
    co_await g.Close(static_cast<int>(fd));
  });
  w.Run();
  // Two acceptable outcomes, depending on who reaches the poisoned entry first:
  //  * the master's PRECALL overwrites the poison (state word is committed last), or
  //  * the slave reads the poisoned entry and its argument check crashes the MVEE.
  // What must NEVER happen is silent corruption: a finished, undiverged run must
  // have produced exactly the correct file.
  if (mvee.finished() && !mvee.divergence_detected()) {
    EXPECT_EQ(w.fs.ReadWholeFile("/tmp/t").value_or(""), "AAAAAAAA");
  }
}

// --- Policy containment --------------------------------------------------------

TEST(SecurityTest, SensitiveCallsStayInLockstepAtTopLevel) {
  SimWorld w(107);
  Remon mvee(&w.kernel, RemonAt(PolicyLevel::kSocketRw));
  mvee.Launch([](Guest& g) -> GuestTask<void> {
    int64_t fd = co_await g.Open("/tmp/x", kO_CREAT | kO_RDWR);  // FD lifecycle.
    int64_t m = co_await g.Mmap(0, 8192, kProtRead | kProtWrite, kMapPrivate);
    co_await g.Mprotect(static_cast<GuestAddr>(m), 8192, kProtRead);
    co_await g.Close(static_cast<int>(fd));
  });
  w.Run();
  EXPECT_FALSE(mvee.divergence_detected());
  // Every one of those calls went through GHUMVEE even at the most relaxed level.
  EXPECT_GE(w.sim.stats().syscalls_monitored, 4u);
}

TEST(SecurityTest, MaybeCheckedRejectsSocketReadAtNonsocketLevel) {
  // A conditionally-allowed call on the wrong FD type must take the 4' path.
  SimWorld w(108);
  RemonOptions opts = RemonAt(PolicyLevel::kNonsocketRo);
  opts.machine = 0;
  Remon mvee(&w.kernel, opts);
  mvee.Launch([](Guest& g) -> GuestTask<void> {
    // Socket pair via loopback.
    int64_t lfd = co_await g.Socket(kAfInet, kSockStream);
    GuestAddr sa = g.Alloc(sizeof(GuestSockaddrIn));
    GuestSockaddrIn addr;
    addr.sin_port = 901;
    addr.sin_addr = g.process()->machine();
    g.Poke(sa, &addr, sizeof(addr));
    co_await g.Bind(static_cast<int>(lfd), sa, sizeof(addr));
    co_await g.Listen(static_cast<int>(lfd), 4);
    int64_t c = co_await g.Socket(kAfInet, kSockStream);
    co_await g.Connect(static_cast<int>(c), sa, sizeof(addr));
    int64_t srv = co_await g.Accept(static_cast<int>(lfd), 0, 0);
    GuestAddr buf = g.Alloc(64);
    g.Poke(buf, "ping", 4);
    co_await g.Write(static_cast<int>(c), buf, 4);   // Socket write: monitored.
    co_await g.Read(static_cast<int>(srv), buf, 4);  // Socket read: monitored.
    co_await g.Close(static_cast<int>(c));
    co_await g.Close(static_cast<int>(srv));
    co_await g.Close(static_cast<int>(lfd));
  });
  w.Run();
  EXPECT_FALSE(mvee.divergence_detected());
  EXPECT_TRUE(mvee.finished());
  // The socket read/write were NOT handled by IP-MON at this level: verify by
  // rerunning at SOCKET_RW and comparing unmonitored counts.
  SimWorld w2(108);
  Remon mvee2(&w2.kernel, RemonAt(PolicyLevel::kSocketRw));
  // (Same program rerun at the relaxed level.)
  // The comparison is indirect: at NONSOCKET_RO the socket I/O shows up as monitored.
  EXPECT_GT(w.sim.stats().ikb_forward_ipmon, 0u);
  EXPECT_GT(w.sim.stats().tokens_revoked, 0u);  // MAYBE_CHECKED destroyed tokens (4').
}

// --- Design contrast: VARAN-like monitor is fast but insecure -------------------

TEST(SecurityTest, VaranLikeDoesNotStopAsymmetricSensitiveCalls) {
  // Under the reliability-oriented monitor the master runs ahead and sensitive calls
  // are not locked: a compromised master's divergent unlink succeeds before any
  // check could stop it (the paper's §6 critique of VARAN for security use).
  SimWorld w(109);
  RemonOptions opts;
  opts.mode = MveeMode::kVaranLike;
  opts.replicas = 2;
  Remon mvee(&w.kernel, opts);
  w.fs.WriteWholeFile("/etc/critical.conf", "do-not-delete");
  mvee.Launch([](Guest& g) -> GuestTask<void> {
    co_await g.Getpid();
    if (g.process()->replica_index == 0) {
      co_await g.Unlink("/etc/critical.conf");  // The attack call: master-only.
    }
    co_await g.Getpid();
  });
  w.Run();
  // The damage is done: the file is gone.
  EXPECT_EQ(w.fs.Resolve("/etc/critical.conf"), nullptr);
}

TEST(SecurityTest, RemonStopsTheSameAttack) {
  SimWorld w(109);
  Remon mvee(&w.kernel, RemonAt(PolicyLevel::kSocketRw));
  w.fs.WriteWholeFile("/etc/critical.conf", "do-not-delete");
  mvee.Launch([](Guest& g) -> GuestTask<void> {
    co_await g.Getpid();
    if (g.process()->replica_index == 0) {
      co_await g.Unlink("/etc/critical.conf");
    }
    co_await g.Getpid();
  });
  w.Run();
  EXPECT_TRUE(mvee.divergence_detected());
  // unlink is always monitored: the lockstep mismatch fired before execution.
  EXPECT_NE(w.fs.Resolve("/etc/critical.conf"), nullptr);
}

// --- Diversification ------------------------------------------------------------

TEST(SecurityTest, DclGivesDisjointCodeAcrossManyReplicas) {
  SimWorld w(110);
  Remon mvee(&w.kernel, RemonAt(PolicyLevel::kSocketRw, 7));
  mvee.Launch([](Guest& g) -> GuestTask<void> { co_return; });
  w.Run();
  const auto& replicas = mvee.replicas();
  for (size_t i = 0; i < replicas.size(); ++i) {
    for (size_t j = i + 1; j < replicas.size(); ++j) {
      const LayoutPlan& a = replicas[i]->layout;
      const LayoutPlan& b = replicas[j]->layout;
      bool code_overlap = a.code_base < b.code_base + b.code_size &&
                          b.code_base < a.code_base + a.code_size;
      EXPECT_FALSE(code_overlap) << "replicas " << i << " and " << j;
      bool ipmon_overlap = a.ipmon_base < b.ipmon_base + b.ipmon_size &&
                           b.ipmon_base < a.ipmon_base + a.ipmon_size;
      EXPECT_FALSE(ipmon_overlap) << "replicas " << i << " and " << j;
    }
  }
}

TEST(SecurityTest, AslrRandomizesAcrossSeeds) {
  GuestAddr base1;
  GuestAddr base2;
  {
    SimWorld w(111);
    Remon mvee(&w.kernel, RemonAt(PolicyLevel::kSocketRw));
    mvee.Launch([](Guest& g) -> GuestTask<void> { co_return; });
    w.Run();
    base1 = mvee.master()->layout.code_base;
  }
  {
    SimWorld w(112);
    Remon mvee(&w.kernel, RemonAt(PolicyLevel::kSocketRw));
    mvee.Launch([](Guest& g) -> GuestTask<void> { co_return; });
    w.Run();
    base2 = mvee.master()->layout.code_base;
  }
  EXPECT_NE(base1, base2);
}

TEST(SecurityTest, RbMigrationMovesBufferTransparently) {
  // The paper's §4 extension: IK-B periodically relocates the RB, so even a leaked
  // address goes stale. Force frequent flushes with a small buffer and verify the
  // base moves while execution stays transparent.
  SimWorld w(114);
  RemonOptions opts = RemonAt(PolicyLevel::kNonsocketRw);
  opts.rb_size = 256 * 1024;
  opts.max_ranks = 4;
  opts.rb_migration = true;
  Remon mvee(&w.kernel, opts);
  GuestAddr base_after_init = 0;
  mvee.Launch([&](Guest& g) -> GuestTask<void> {
    int64_t fd = co_await g.Open("/tmp/mig.txt", kO_CREAT | kO_RDWR);
    GuestAddr buf = g.Alloc(2048);
    if (g.process()->replica_index == 0) {
      base_after_init = mvee.ipmon(0)->rb().base();  // Before any flush/migration.
    }
    for (int i = 0; i < 120; ++i) {
      co_await g.Write(static_cast<int>(fd), buf, 2048);
    }
    co_await g.Close(static_cast<int>(fd));
  });
  w.Run();
  EXPECT_TRUE(mvee.finished());
  EXPECT_FALSE(mvee.divergence_detected());
  EXPECT_GT(mvee.ipmon(0)->rb_migrations(), 0u);
  EXPECT_NE(base_after_init, 0u);
  EXPECT_NE(mvee.ipmon(0)->rb().base(), base_after_init);
  EXPECT_EQ(w.fs.ReadWholeFile("/tmp/mig.txt")->size(), 120u * 2048u);
}

// --- Signal-based attacks ---------------------------------------------------------

TEST(SecurityTest, AsyncSignalsCannotDesyncReplicas) {
  // A storm of timer signals during unmonitored I/O must not cause divergence: the
  // §2.2/§3.8 deferral machinery delivers every signal at equivalent points.
  SimWorld w(113);
  Remon mvee(&w.kernel, RemonAt(PolicyLevel::kNonsocketRw));
  int handled = 0;
  mvee.Launch([&handled](Guest& g) -> GuestTask<void> {
    uint64_t cookie = g.RegisterHandler([&handled](Guest&, int) -> GuestTask<void> {
      ++handled;
      co_return;
    });
    co_await g.Sigaction(kSIGALRM, cookie);
    GuestAddr its = g.Alloc(sizeof(GuestItimerspec));
    GuestItimerspec spec;
    spec.it_value = GuestTimespec{0, Millis(1)};
    spec.it_interval = GuestTimespec{0, Millis(1)};
    g.Poke(its, &spec, sizeof(spec));
    co_await g.Syscall(Sys::kSetitimer, 0, its, 0);
    int64_t fd = co_await g.Open("/tmp/sig.dat", kO_CREAT | kO_RDWR);
    GuestAddr buf = g.Alloc(1024);
    for (int i = 0; i < 200; ++i) {
      co_await g.Compute(Micros(50));
      co_await g.Write(static_cast<int>(fd), buf, 1024);
    }
    // Disarm before exit.
    GuestItimerspec off{};
    g.Poke(its, &off, sizeof(off));
    co_await g.Syscall(Sys::kSetitimer, 0, its, 0);
    co_await g.Close(static_cast<int>(fd));
  });
  w.Run();
  EXPECT_FALSE(mvee.divergence_detected());
  EXPECT_TRUE(mvee.finished());
  EXPECT_GT(handled, 0);
  EXPECT_EQ(handled % 2, 0);  // Every delivery hit both replicas.
  EXPECT_GT(w.sim.stats().signals_deferred, 0u);
}

}  // namespace
}  // namespace remon

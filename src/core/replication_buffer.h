// The IP-MON replication buffer (paper §3.2, §3.7).
//
// A System V shared-memory segment mapped at a *different, hidden* virtual address in
// every replica. The master's IP-MON appends one variable-size entry per unmonitored
// call: deep-copied arguments (for the slaves' sanity checks), a small flag word, and
// later the results. Slaves consume entries in order, each tracking only its own read
// cursor — the buffer is linear, not circular; on overflow GHUMVEE arbitrates a reset
// (all replicas synchronize, cursors return to zero). Every entry embeds its own
// condition variable (a futex word) so slaves waiting for different invocations never
// contend, and the master skips FUTEX_WAKE entirely when no slave is waiting.
//
// Multi-threaded replicas get one sub-buffer per thread rank: "each replica thread
// only reads and writes its own RB position".
//
// All accesses go through the owning process's mapping (AddressSpace), so the RB
// content truly lives in shared frames — an attacker replica that somehow learned the
// address could tamper with it, which is exactly the threat model the security tests
// probe.

#ifndef SRC_CORE_REPLICATION_BUFFER_H_
#define SRC_CORE_REPLICATION_BUFFER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/kernel/process.h"
#include "src/kernel/sysno.h"
#include "src/mem/page.h"

namespace remon {

// System V keys at or above this base are reserved for ReMon infrastructure (the RB
// and the sync-agent log); GHUMVEE's shared-memory policing admits them and denies
// application requests for writable inter-replica channels (paper §2.1).
inline constexpr int kRemonShmKeyBase = 0x5245'0000;
inline constexpr int kRbShmKey = kRemonShmKeyBase + 1;
inline constexpr int kSyncShmKey = kRemonShmKeyBase + 2;

// Entry states.
inline constexpr uint32_t kRbEmpty = 0;
inline constexpr uint32_t kRbArgsReady = 1;    // PRECALL data committed by the master.
inline constexpr uint32_t kRbResultsReady = 2;  // POSTCALL data committed.

// Entry flags.
inline constexpr uint32_t kRbFlagMasterCall = 1u << 0;   // Only the master executes.
inline constexpr uint32_t kRbFlagMaybeBlocking = 1u << 1;  // Slaves should futex-wait.
inline constexpr uint32_t kRbFlagForwarded = 1u << 2;    // Master forwarded to GHUMVEE.

// Fixed header of each entry (bytes; see replication_buffer.cc for field offsets).
inline constexpr uint64_t kRbEntryHeaderSize = 64;
// Global RB header: signals_pending flag + generation counter.
inline constexpr uint64_t kRbGlobalHeaderSize = 64;
// Per-rank sub-buffer header: the master's write cursor.
inline constexpr uint64_t kRbRankHeaderSize = 64;

// One replica's view of the shared buffer.
class RbView {
 public:
  RbView() = default;
  RbView(Process* process, GuestAddr base, uint64_t size, int max_ranks)
      : process_(process), base_(base), size_(size), max_ranks_(max_ranks) {}

  bool valid() const { return process_ != nullptr; }
  Process* process() const { return process_; }
  GuestAddr base() const { return base_; }
  uint64_t size() const { return size_; }
  int max_ranks() const { return max_ranks_; }

  // --- Layout -----------------------------------------------------------------

  uint64_t SubBufferSize() const {
    return (size_ - kRbGlobalHeaderSize) / static_cast<uint64_t>(max_ranks_);
  }
  // Offset (from base) of rank r's sub-buffer.
  uint64_t RankStart(int rank) const {
    return kRbGlobalHeaderSize + static_cast<uint64_t>(rank) * SubBufferSize();
  }
  // Offset of the first entry slot in rank r's sub-buffer.
  uint64_t RankDataStart(int rank) const { return RankStart(rank) + kRbRankHeaderSize; }
  uint64_t RankDataEnd(int rank) const { return RankStart(rank) + SubBufferSize(); }

  // --- Global header ---------------------------------------------------------------

  void SetSignalsPending(bool pending);
  bool SignalsPending() const;

  // --- Raw access (through the replica's page mappings) ---------------------------

  uint32_t ReadU32(uint64_t offset) const;
  uint64_t ReadU64(uint64_t offset) const;
  void WriteU32(uint64_t offset, uint32_t v);
  void WriteU64(uint64_t offset, uint64_t v);
  void WriteBytes(uint64_t offset, const void* data, uint64_t len);
  void ReadBytes(uint64_t offset, void* out, uint64_t len) const;
  void Zero(uint64_t offset, uint64_t len);

  // Guest virtual address of a given offset (for futex waits on entry words).
  GuestAddr AddrOf(uint64_t offset) const { return base_ + offset; }

 private:
  Process* process_ = nullptr;
  GuestAddr base_ = 0;
  uint64_t size_ = 0;
  int max_ranks_ = 1;
};

// Decoded entry header.
struct RbEntryHeader {
  uint32_t state = kRbEmpty;
  uint32_t waiters = 0;
  uint32_t sysno = 0;
  uint32_t flags = 0;
  uint64_t total_size = 0;
  uint64_t seq = 0;
  int64_t result = 0;
  uint64_t sig_len = 0;
  uint64_t out_len = 0;
};

// Entry field offsets (relative to the entry start).
inline constexpr uint64_t kRbOffState = 0;
inline constexpr uint64_t kRbOffWaiters = 4;
inline constexpr uint64_t kRbOffSysno = 8;
inline constexpr uint64_t kRbOffFlags = 12;
inline constexpr uint64_t kRbOffTotalSize = 16;
inline constexpr uint64_t kRbOffSeq = 24;
inline constexpr uint64_t kRbOffResult = 32;
inline constexpr uint64_t kRbOffSigLen = 40;
inline constexpr uint64_t kRbOffOutLen = 48;

// Entry-level operations used by IP-MON's handlers.
class RbEntryOps {
 public:
  // Total entry footprint for a signature of `sig_len` bytes and result payload
  // capacity `out_capacity`.
  static uint64_t EntrySize(uint64_t sig_len, uint64_t out_capacity) {
    uint64_t raw = kRbEntryHeaderSize + sig_len + out_capacity;
    return (raw + 7) & ~uint64_t{7};
  }

  static RbEntryHeader ReadHeader(const RbView& view, uint64_t entry_off);

  // Master: writes argument data + header fields WITHOUT flipping the state word.
  // The entry stays kRbEmpty until PublishState — this is the staging half of
  // PRECALL coalescing: consecutive entries' argument commits land back to back in
  // the RB as plain contiguous writes and become visible in one publication pass.
  static void StageArgs(RbView& view, uint64_t entry_off, Sys nr, uint32_t flags,
                        uint64_t seq, uint64_t total_size,
                        const std::vector<uint8_t>& signature);

  // Master: writes the result + payload bytes WITHOUT flipping the state word
  // (the staging half of a deferred POSTCALL commit).
  static void StageResults(RbView& view, uint64_t entry_off, int64_t result,
                           const std::vector<uint8_t>& payload);

  // Master: flips the entry's state word (the publication). Returns the number of
  // slave waiters registered on the entry before the flip (0 -> the FUTEX_WAKE can
  // be elided, §3.7).
  static uint32_t PublishState(RbView& view, uint64_t entry_off, uint32_t state);

  // Master: commits argument data and flips state to kRbArgsReady (eager PRECALL).
  static void CommitArgs(RbView& view, uint64_t entry_off, Sys nr, uint32_t flags,
                         uint64_t seq, uint64_t total_size,
                         const std::vector<uint8_t>& signature);

  // Master: appends result payload (concatenated out-regions) and flips state to
  // kRbResultsReady. Returns the number of slave waiters present before the flip
  // (0 -> the FUTEX_WAKE can be elided, §3.7).
  static uint32_t CommitResults(RbView& view, uint64_t entry_off, int64_t result,
                                const std::vector<uint8_t>& payload);

  // Slave: reads the master's recorded signature.
  static std::vector<uint8_t> ReadSignature(const RbView& view, uint64_t entry_off);
  // Slave: reads the result payload.
  static std::vector<uint8_t> ReadPayload(const RbView& view, uint64_t entry_off);

  // Slave: registers itself as waiting on this entry's condition variable.
  static void AddWaiter(RbView& view, uint64_t entry_off);
  static void RemoveWaiter(RbView& view, uint64_t entry_off);
};

// How the effective batch window is chosen.
//   kFixed    — the window is always Config::rb_batch_max (PR 1 behavior).
//   kAdaptive — the window floats in [1, rb_batch_max], driven by the slave waiter
//               pressure observed at flush points (see RbBatch::ObservePressure).
enum class RbBatchPolicy { kFixed, kAdaptive };

// Batched RB publication: the master coalesces the commits of consecutive small,
// non-blocking unmonitored calls on one rank into a single publication. Both sides
// are deferred:
//   PRECALL  — argument bytes are staged into the RB as one contiguous run of plain
//              writes (RbEntryOps::StageArgs), with the per-entry args-ready flips
//              held back;
//   POSTCALL — result payloads are buffered and written back to back at the flush.
// At the flush the state words flip oldest-to-newest in one cache-line-friendly
// pass — an entry holding both deferred sides flips straight to kRbResultsReady —
// and the slaves get *one* wakeup instead of one per entry. Divergence fidelity is
// preserved: every entry's argument bytes are in the RB before the entry's POSTCALL
// becomes visible, so a slave always checks the master's arguments before it can
// consume that entry's results. The batch must be flushed before anything that can
// park the master indefinitely or leave the fast path (blocked socket/pipe reads,
// explicit sleeps, local calls, GHUMVEE forwards, RB resets) — IP-MON owns those
// flush points, with a kernel park hook as the liveness backstop; deferring across
// bounded-latency regular-file I/O is the intended trade-off.
class RbBatch {
 public:
  struct Slot {
    uint64_t entry_off = 0;
    bool args_deferred = false;    // Staged args: state word still kRbEmpty.
    bool results_pending = false;  // Result payload buffered for the flush.
    int64_t result = 0;
    std::vector<uint8_t> payload;
  };

  bool empty() const { return slots_.empty(); }
  size_t size() const { return slots_.size(); }
  const std::vector<Slot>& slots() const { return slots_; }

  // Records an entry whose argument bytes were staged (RbEntryOps::StageArgs) with
  // the args-ready publication deferred to the next flush.
  void StageArgs(uint64_t entry_off) {
    slots_.push_back(Slot{entry_off, /*args_deferred=*/true,
                          /*results_pending=*/false, 0, {}});
  }

  // Defers an entry's POSTCALL commit. Merges into the entry's staged-args slot
  // when one is still pending (the common case); otherwise — the staged args were
  // already published by an intervening flush — appends a results-only slot.
  void AddResults(uint64_t entry_off, int64_t result, std::vector<uint8_t> payload) {
    for (auto it = slots_.rbegin(); it != slots_.rend(); ++it) {
      if (it->entry_off == entry_off) {
        it->results_pending = true;
        it->result = result;
        it->payload = std::move(payload);
        return;
      }
    }
    slots_.push_back(Slot{entry_off, /*args_deferred=*/false,
                          /*results_pending=*/true, result, std::move(payload)});
  }

  // True while the entry's args-ready publication is still deferred in this batch.
  bool ArgsDeferred(uint64_t entry_off) const {
    for (const Slot& s : slots_) {
      if (s.entry_off == entry_off && s.args_deferred) {
        return true;
      }
    }
    return false;
  }

  // Number of deferred POSTCALL commits currently held.
  size_t results_pending() const {
    size_t n = 0;
    for (const Slot& s : slots_) {
      n += s.results_pending ? 1 : 0;
    }
    return n;
  }

  // The coalesced publication: every pending payload is written first, then the
  // state words flip oldest-to-newest — straight to kRbResultsReady for slots
  // carrying results, to kRbArgsReady for args-only slots (an entry mid-execution
  // when the flush hit). Returns the total waiter count observed before the flips —
  // zero means even the single batched FUTEX_WAKE can be elided. The caller wakes
  // the entries' wait queues and clears the batch via Take().
  uint32_t Commit(RbView& view) {
    for (const Slot& s : slots_) {
      if (s.results_pending) {
        RbEntryOps::StageResults(view, s.entry_off, s.result, s.payload);
      }
    }
    uint32_t waiters = 0;
    for (const Slot& s : slots_) {
      waiters += RbEntryOps::PublishState(
          view, s.entry_off, s.results_pending ? kRbResultsReady : kRbArgsReady);
    }
    return waiters;
  }

  std::vector<Slot> Take() {
    std::vector<Slot> out = std::move(slots_);
    slots_.clear();
    return out;
  }

  // --- Adaptive window (RbBatchPolicy::kAdaptive) ---------------------------------

  int window() const { return window_; }

  // Feeds one flush-point observation into the AIMD window state machine:
  //   futex waiters > 0 — slaves were parked on deferred entries; the deferral is
  //     costing them real sleep/wake round trips: halve the window.
  //   spinners only     — slaves just arrived and are burning cycles on the state
  //     word; mild pressure: shrink by one.
  //   neither           — the slaves lag the master anyway; deferral is free:
  //     grow by one toward `window_max`.
  // Returns the signed window change (for the caller's stats).
  int ObservePressure(uint32_t futex_waiters, uint32_t spinners, int window_max) {
    int before = window_;
    if (futex_waiters > 0) {
      window_ = window_ > 1 ? window_ / 2 : 1;
    } else if (spinners > 0) {
      window_ = window_ > 1 ? window_ - 1 : 1;
    } else if (window_ < window_max) {
      ++window_;
    }
    return window_ - before;
  }

  // Feeds one transport-backpressure observation (the leader stalled at a flush
  // point because a remote link has the full in-flight frame budget outstanding).
  // On a slow link the cure is the opposite of local waiter pressure: coalesce
  // *more* entries per frame, so the window takes the AIMD additive step up.
  // Returns the signed window change (for the caller's stats).
  int ObserveBackpressure(int window_max) {
    if (window_ >= window_max) {
      return 0;
    }
    ++window_;
    return 1;
  }

 private:
  std::vector<Slot> slots_;
  int window_ = 1;  // Effective batch size under kAdaptive; grows on idle flushes.
};

}  // namespace remon

#endif  // SRC_CORE_REPLICATION_BUFFER_H_

// ReMon front end: wires the full MVEE (and the baselines) together.
//
// One Remon instance launches N diversified replicas of a guest program and
// supervises them in one of four modes:
//
//   kNative      — a single unmonitored process (the baseline denominator).
//   kGhumveeOnly — the classic cross-process MVEE: every call monitored in lockstep
//                  (the paper's "no IP-MON" configuration).
//   kRemon       — the paper's contribution: GHUMVEE + IK-B + IP-MON with a
//                  configurable spatial/temporal relaxation policy.
//   kVaranLike   — a reliability-oriented in-process-only monitor (no lockstep, no
//                  CP isolation), the VARAN-style comparison point of Table 2.
//
// Replicas get diversified address-space layouts (ASLR + Disjoint Code Layouts).

#ifndef SRC_CORE_REMON_H_
#define SRC_CORE_REMON_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/broker.h"
#include "src/core/ghumvee.h"
#include "src/core/ipmon.h"
#include "src/core/policy.h"
#include "src/core/rb_transport.h"
#include "src/core/sync_agent.h"
#include "src/kernel/kernel.h"
#include "src/mem/layout.h"

namespace remon {

enum class MveeMode { kNative, kGhumveeOnly, kRemon, kVaranLike };

std::string_view MveeModeName(MveeMode mode);

// How a replacement replica's checkpoint is cut (Remon::MakeReseedPayloads):
// kDelta resumes from the dead replica's ack-folded horizon when that basis is
// usable and falls back to full otherwise; kFull always ships the whole leader
// state (--reseed=full, the ablation baseline the delta sweep compares against).
enum class ReseedMode { kDelta, kFull };

struct RemonOptions {
  MveeMode mode = MveeMode::kRemon;
  int replicas = 2;
  PolicyLevel level = PolicyLevel::kSocketRw;
  TemporalPolicy temporal;
  uint64_t rb_size = 16 * 1024 * 1024;
  int max_ranks = 16;
  bool aslr = true;
  bool dcl = true;
  uint32_t machine = 0;
  // Cross-machine replica sets: the machine each replica runs on, index-aligned
  // with the replica set. Empty = every replica on `machine`. When set, entry 0
  // must equal `machine` (the leader is always local); replicas placed on other
  // machines get a private RB mirror fed by the RB network transport
  // (src/core/rb_transport.h) instead of leader-shared frames. Requires kRemon.
  std::vector<uint32_t> replica_machines;
  // Unacked RB frames allowed per remote link before the leader's flush points
  // stall (the slow-link backpressure bound; also feeds the adaptive window).
  int rb_max_inflight_frames = 8;
  // Replica re-seed: when a remote replica's link dies, checkpoint the leader
  // (src/core/snapshot.h) and attach a replacement at the post-bump epoch instead
  // of reporting divergence. The replica set survives replica loss.
  bool respawn_dead_replicas = false;
  // Death-to-replacement delay (models provisioning the replacement instance).
  // Must stay well under GHUMVEE's lockstep watchdog: peers parked at a monitored
  // barrier wait for the rejoiner, and the watchdog outlasting the respawn is what
  // makes recovery invisible to them.
  DurationNs respawn_delay = 200 * kMicrosecond;
  // A replica that keeps failing its join is divergent, not unlucky: attempts
  // beyond this cap fall back to the divergence report.
  int max_respawns_per_replica = 3;
  // Respawn-budget decay: every full interval a replica stays healthy refunds one
  // spent respawn attempt. Without it the cap above is a lifetime cap, and any
  // long-running replica set eventually exhausts it on sporadic recoverable
  // deaths; with it only deaths in quick succession — a genuinely sick replica —
  // hit the cap. <= 0 restores the lifetime-cap behavior.
  DurationNs respawn_budget_decay = 10 * kMillisecond;
  // How replacement checkpoints are cut: kDelta serializes only what the dead
  // replica had not acked (O(delta), flat in RB size); kFull always ships the
  // whole leader state (O(RB size), the pre-delta behavior). --reseed=delta|full.
  ReseedMode reseed_mode = ReseedMode::kDelta;
  // Respawn-as-migration: respawn replacements onto this machine instead of the
  // machine the replica died on (-1 keeps the placement). The replacement's join
  // attestation carries the new placement. --respawn-target=N.
  int respawn_target_machine = -1;
  // Memory pressure of the workload in [0, 1] (drives the replica-contention
  // dilation of compute bursts; see CostModel).
  double mem_intensity = 0.2;
  // Enable the record/replay agent for multi-threaded workloads.
  bool use_sync_agent = false;
  // Sync-agent log segment size (64-byte header + 16-byte circular entry slots).
  // Small logs wrap: the master gates appends on the slowest replica's replay
  // cursor instead of failing.
  uint64_t sync_log_size = 1024 * 1024;
  // Slave wait strategy (ablation knob; kAuto is the paper's design).
  IpmonWaitMode wait_mode = IpmonWaitMode::kAuto;
  // Batched RB publication (ablation knob): coalesce up to this many small
  // non-blocking entries per rank — staged PRECALL commits + deferred POSTCALL
  // results — into one publication + one slave wakeup. 0 keeps the paper's
  // per-entry publication. Under kAdaptive this is the ceiling of the
  // waiter-pressure-driven window (<= 0 picks a default ceiling of 16).
  int rb_batch_max = 0;
  RbBatchPolicy rb_batch_policy = RbBatchPolicy::kFixed;
  // §4 extension: periodically migrate the RB to fresh addresses at flush points.
  bool rb_migration = false;
  // Authenticated RB transport (wire v4): seal every cross-machine frame with a
  // keyed MAC + stream encryption, require an attested join before a replacement
  // replica is seeded, and rotate session keys at every epoch bump. Local-only
  // replica sets ignore the flag (there is no wire to protect).
  bool rb_auth = false;
  // Pre-shared key material both ends derive their session keys from. The
  // simulation models distribution as out-of-band (a deployment would provision
  // it per replica-set).
  std::string rb_auth_secret = "remon-rb-transport-secret";
  // FD metadata map capacity in pages (one byte per FD, 4096 FDs per page).
  // High-connection-count shards need more than the classic single page; the
  // map is sized before launch and mapped read-only into every replica.
  int file_map_pages = 1;
};

// Gate for the VARAN-like mode: routes every system call of a registered replica to
// its in-process monitor; there is no broker, no tokens, and no CP fallback.
class VaranGate : public SyscallGate {
 public:
  VaranGate(Kernel* kernel, IpMon* mon) : kernel_(kernel), mon_(mon) {}
  bool Intercept(Thread* t) override;

 private:
  Kernel* kernel_;
  IpMon* mon_;
};

class Remon {
 public:
  Remon(Kernel* kernel, const RemonOptions& options);
  ~Remon();
  Remon(const Remon&) = delete;
  Remon& operator=(const Remon&) = delete;

  // Launches the replica set running `body`. Each replica executes the MVEE prologue
  // (sync-agent + IP-MON initialization, as configured) before the workload body.
  void Launch(ProgramFn body, const std::string& name = "app");

  // Checkpoints the leader at a quiescent flush point and attaches a replacement
  // replica for `replica_index` — a remote replica whose link died — at the
  // current (post-bump) stream epoch: fresh agent on a generation-distinct port,
  // snapshot frames leading the new connection's stream. Returns false when there
  // is nothing to replace (not remote, link still live, MVEE shutting down).
  // Invoked automatically on remote death under respawn_dead_replicas.
  // `target_machine` >= 0 places the replacement there instead of the machine the
  // replica ran on (respawn-as-migration): a still-live link is retired quietly
  // first (no death event, no respawn-budget charge), and the join attestation
  // must present the new placement. -1 keeps the current placement.
  bool SpawnReplacement(int replica_index, int target_machine = -1);
  // The checkpoint payloads for `replica_index`'s replacement: an O(delta)
  // capture against the transport's ack-folded basis when reseed_mode allows and
  // the basis is usable (same RB reset generation, sync-log slice not wrapped
  // past the replica's replay cursor), else a full capture. Exposed so tests and
  // benches can exercise the decision directly.
  SnapshotPayloads MakeReseedPayloads(int replica_index, uint64_t sync_read_cursor);
  // Replacement attempts launched so far (joins completed are per-agent: see
  // RemoteSyncAgent::joins()).
  uint64_t respawns() const { return respawns_; }
  // Respawn attempts currently charged against the replica, after budget decay.
  int respawn_attempts(int replica_index) const {
    return replica_index >= 0 &&
                   replica_index < static_cast<int>(respawn_attempts_.size())
               ? respawn_attempts_[static_cast<size_t>(replica_index)]
               : 0;
  }

  const RemonOptions& options() const { return options_; }
  Ghumvee* ghumvee() const { return ghumvee_.get(); }
  IkBroker* broker() const { return broker_.get(); }
  IpMon* ipmon(int replica_index) const {
    return replica_index < static_cast<int>(ipmons_.size())
               ? ipmons_[static_cast<size_t>(replica_index)].get()
               : nullptr;
  }
  SyncAgent* sync_agent(int replica_index) const {
    return replica_index < static_cast<int>(agents_.size())
               ? agents_[static_cast<size_t>(replica_index)].get()
               : nullptr;
  }
  // Cross-machine plumbing (null / nullptr for all-local replica sets).
  RbTransport* transport() const { return transport_.get(); }
  RemoteSyncAgent* remote_agent(int replica_index) const {
    return replica_index < static_cast<int>(remote_agents_.size())
               ? remote_agents_[static_cast<size_t>(replica_index)].get()
               : nullptr;
  }
  Process* master() const { return replicas_.empty() ? nullptr : replicas_[0]; }
  const std::vector<Process*>& replicas() const { return replicas_; }

  bool divergence_detected() const {
    return ghumvee_ != nullptr && ghumvee_->divergence_detected();
  }
  // True when every replica has exited (normally or via shutdown).
  bool finished() const;

 private:
  Kernel* kernel_;
  RemonOptions options_;
  Rng layout_rng_;
  LayoutPlanner planner_;
  std::unique_ptr<Ghumvee> ghumvee_;
  std::unique_ptr<IkBroker> broker_;
  std::unique_ptr<TemporalExemptionState> temporal_;
  std::unique_ptr<FileMap> varan_file_map_;
  std::vector<std::unique_ptr<IpMon>> ipmons_;
  std::vector<std::unique_ptr<SyncAgent>> agents_;
  std::vector<std::unique_ptr<VaranGate>> varan_gates_;
  std::vector<Process*> replicas_;
  // Cross-machine replica sets: the leader-side frame pump and the per-replica
  // remote agents (slots for local replicas stay null). Declared after ipmons_ so
  // they are destroyed first — agents hold raw IpMon pointers.
  // Authenticated transport (rb_auth): shared key schedule + the config digest
  // every attested join must present. Transport and agents hold non-owning
  // pointers; declared before them so it outlives their destruction.
  std::unique_ptr<RbAuthContext> auth_;
  uint64_t config_digest_ = 0;
  std::unique_ptr<RbTransport> transport_;
  std::vector<std::unique_ptr<RemoteSyncAgent>> remote_agents_;
  // Replica re-seed bookkeeping: per-replica respawn attempts (capped), the join
  // generation (distinct agent ports), and scheduled-but-unfired respawn events
  // (cancelled at destruction so a torn-down MVEE cannot be called back).
  std::vector<int> respawn_attempts_;
  std::vector<int> join_generation_;
  std::vector<EventQueue::EventId> pending_respawns_;
  // When each replica last charged a respawn attempt — the decay anchor that
  // turns max_respawns_per_replica from a lifetime cap into a rate cap.
  std::vector<TimeNs> last_respawn_ns_;
  uint64_t respawns_ = 0;

  // Refunds respawn attempts earned by healthy time since the last charge
  // (respawn_budget_decay per attempt). Called before every cap check.
  void DecayRespawnBudget(int replica_index);
};

}  // namespace remon

#endif  // SRC_CORE_REMON_H_

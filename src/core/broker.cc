#include "src/core/broker.h"

#include <cstdio>

#include "src/core/ipmon.h"
#include "src/sim/check.h"

namespace remon {

void IkBroker::AttachReplica(Process* process, IpMon* mon) {
  replicas_[process] = mon;
  process->gate = this;
}

void IkBroker::DetachReplica(Process* process) {
  replicas_.erase(process);
  if (process->gate == this) {
    process->gate = nullptr;
  }
}

bool IkBroker::Intercept(Thread* t) {
  Process* p = t->process();
  auto it = replicas_.find(p);
  if (it == replicas_.end() || !p->ipmon.registered) {
    return false;  // No IP-MON: default path (ptrace when traced).
  }
  const SyscallRequest req = t->cur_req;
  Sys nr = req.nr;
  uint32_t idx = static_cast<uint32_t>(nr);
  SimStats& stats = kernel_->stats();

  bool route_ipmon = false;
  bool temporal_exempt = false;
  if (idx < kNumSyscalls && p->ipmon.unmonitored[idx] &&
      (policy_.UnconditionallyExempt(nr) || policy_.ConditionallyExempt(nr))) {
    route_ipmon = true;
  }
  // Temporal exemption can admit additional, repeatedly-approved calls — but never
  // the forced-CP set, and only calls IP-MON can replicate (checked by MayExempt).
  if (!route_ipmon && temporal_ != nullptr && temporal_->MayExempt(nr, p->replica_index)) {
    route_ipmon = true;
    temporal_exempt = true;
  }
  if (!route_ipmon) {
    ++stats.ikb_forward_ghumvee;
    return false;
  }

  // Forward to IP-MON (fig. 2, step 2): rewrite the return PC to IP-MON's entry
  // point and pass a fresh one-time token plus the (hidden) RB pointer in protected
  // registers. Costs: routing decision + token generation.
  ++stats.ikb_forward_ipmon;
  uint64_t token = IssueToken(t);
  IpMon* mon = it->second;
  const CostModel& costs = kernel_->sim()->costs();
  kernel_->RunOnThreadCore(
      t, costs.ikb_route_ns + costs.token_generate_ns,
      [this, t, mon, req, token, temporal_exempt] {
        if (!t->alive()) {
          return;
        }
        kernel_->StartAuxCoroutine(t, mon->HandleCall(t, req, token, temporal_exempt),
                                   nullptr);
      });
  return true;
}

uint64_t IkBroker::IssueToken(Thread* t) {
  ++kernel_->stats().tokens_issued;
  // Tokens are never zero so a cleared register cannot accidentally verify.
  uint64_t token = kernel_->sim()->rng().Next64() | 1;
  t->ipmon_token = token;
  t->ipmon_token_valid = true;
  return token;
}

bool IkBroker::VerifyToken(Thread* t, uint64_t token, Sys restarted_nr) {
  SimStats& stats = kernel_->stats();
  ++stats.tokens_verified;
  // The token must be intact, and the restarted call must be the forwarded one: a
  // different call (or a replayed/guessed token) is revoked and forced to GHUMVEE.
  if (t->ipmon_token_valid && token == t->ipmon_token && t->cur_req.nr == restarted_nr) {
    t->ipmon_token_valid = false;  // One-time use.
    return true;
  }
  ++stats.policy_violations;
  RevokeToken(t);
  return false;
}

void IkBroker::RevokeToken(Thread* t) {
  if (t->ipmon_token_valid) {
    ++kernel_->stats().tokens_revoked;
  }
  t->ipmon_token_valid = false;
  t->ipmon_token = 0;
}

}  // namespace remon

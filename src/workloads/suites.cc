#include "src/workloads/suites.h"

#include <algorithm>
#include <cmath>

#include "src/core/sync_agent.h"
#include "src/kernel/abi.h"
#include "src/sim/check.h"

namespace remon {

namespace {

// Calibrated per-call MVEE costs with two replicas (virtual seconds per call), used
// to translate the paper's overhead bars into system-call rates:
//   overhead_cp - overhead_ip = rate * (kCpCost - kIpCost).
// kCpCost: a monitored call (4 ptrace stops, lockstep, replication).
// kIpCost: an unmonitored call through IP-MON (RB append + slave copy).
// These mirror the measured costs of the simulated monitors; bench_abl_ctxcost
// reports the actual values so the calibration can be checked.
constexpr double kCpCost = 19.8e-6;
constexpr double kIpCost = 0.7e-6;
// With four worker threads the monitor pipelines stops across ranks, so the
// effective wall-clock cost per call is lower (measured with the same probe).
constexpr double kCpCostMt = 9.2e-6;
constexpr double kIpCostMt = 0.2e-6;

// Native cost of one system call (trap + service), for iteration budgeting.
constexpr double kNativeCallCost = 0.5e-6;

// Builds a spec from a 6-level ladder of paper bars:
//   bars = {no-ipmon, BASE, NONSOCKET_RO, NONSOCKET_RW, SOCKET_RO, SOCKET_RW}.
// Consecutive deltas resolve the call mix by category; the final bar's residual
// (minus the remaining IP-MON cost) becomes memory pressure.
WorkloadSpec FromLadder(const std::string& name, const std::string& suite, int threads,
                        const double (&bars)[6], double native_seconds,
                        uint64_t io_size) {
  WorkloadSpec spec;
  spec.name = name;
  spec.suite = suite;
  spec.threads = threads;
  spec.io_size = io_size;
  spec.paper_ghumvee = bars[0];
  spec.paper_remon = bars[3];  // Fig. 3 reports the NONSOCKET_RW level.

  const double cp_cost = threads > 1 ? kCpCostMt : kCpCost;
  const double ip_cost = threads > 1 ? kIpCostMt : kIpCost;
  const double delta = cp_cost - ip_cost;
  double rate_base = std::max(0.0, (bars[0] - bars[1]) / delta);
  double rate_nsro = std::max(0.0, (bars[1] - bars[2]) / delta);
  double rate_nsrw = std::max(0.0, (bars[2] - bars[3]) / delta);
  double rate_sock = std::max(0.0, (bars[3] - bars[5]) / delta);  // RO+RW halves.
  // Rates are aggregate over all worker threads.
  double total_rate = rate_base + rate_nsro + rate_nsrw + rate_sock;

  spec.mem_intensity = std::max(0.0, bars[5] - 1.0 - total_rate * ip_cost);

  if (total_rate < 50.0) {
    // Essentially syscall-free: a sparse heartbeat of BASE queries.
    spec.base_queries = 1;
    spec.compute_per_iter = Micros(400);
    spec.iterations = static_cast<int>(native_seconds * 1e9 /
                                       static_cast<double>(spec.compute_per_iter)) /
                      threads;
    spec.iterations = std::max(spec.iterations, 10);
    return spec;
  }

  // Choose small per-iteration counts proportional to the category rates.
  double min_rate = total_rate;
  for (double r : {rate_base, rate_nsro, rate_nsrw, rate_sock}) {
    if (r > 1.0) {
      min_rate = std::min(min_rate, r);
    }
  }
  auto count_for = [&](double r) {
    if (r <= 1.0) {
      return 0;
    }
    return std::max(1, static_cast<int>(std::lround(r / min_rate)));
  };
  spec.base_queries = count_for(rate_base);
  // NONSOCKET_RO split between metadata (unconditional) and reads (conditional).
  int nsro = count_for(rate_nsro);
  spec.file_metadata = nsro / 2;
  spec.file_reads = nsro - nsro / 2;
  spec.file_writes = count_for(rate_nsrw);
  spec.sock_echoes = std::max(0, count_for(rate_sock) / 2);  // Each echo = 2 calls.
  if (count_for(rate_sock) == 1) {
    spec.sock_echoes = 1;
  }

  // Cap the per-iteration footprint; proportions survive, iterations scale.
  while (spec.CallsPerIter() > 24) {
    spec.base_queries = (spec.base_queries + 1) / 2;
    spec.file_metadata = (spec.file_metadata + 1) / 2;
    spec.file_reads = (spec.file_reads + 1) / 2;
    spec.file_writes = (spec.file_writes + 1) / 2;
    spec.sock_echoes = (spec.sock_echoes + 1) / 2;
  }
  int calls = std::max(1, spec.CallsPerIter());

  // Each thread paces itself so the *aggregate* rate across threads hits the target.
  double per_thread_rate = total_rate / threads;
  double iter_seconds = static_cast<double>(calls) / per_thread_rate;
  double compute = iter_seconds - static_cast<double>(calls) * kNativeCallCost;
  spec.compute_per_iter = std::max<DurationNs>(100, static_cast<DurationNs>(compute * 1e9));
  double native_iter = static_cast<double>(spec.compute_per_iter) * 1e-9 +
                       static_cast<double>(calls) * kNativeCallCost;
  spec.iterations = std::max(10, static_cast<int>(native_seconds / native_iter));
  return spec;
}

// Two-bar convenience (Fig. 3 benchmarks): all calls at or below NONSOCKET_RW, with
// a fixed 20/10/35/35 split across base/metadata/read/write.
WorkloadSpec FromBars(const std::string& name, const std::string& suite, int threads,
                      double cp_bar, double ip_bar, double native_seconds = 0.2,
                      uint64_t io_size = 1024) {
  double span = std::max(0.0, cp_bar - ip_bar);
  double bars[6];
  bars[0] = cp_bar;
  // Distribute the relaxable overhead across the ladder per the fixed mix.
  bars[1] = cp_bar - 0.20 * span;
  bars[2] = bars[1] - 0.45 * span;
  bars[3] = ip_bar;
  bars[4] = ip_bar;
  bars[5] = ip_bar;
  WorkloadSpec spec = FromLadder(name, suite, threads, bars, native_seconds, io_size);
  spec.paper_ghumvee = cp_bar;
  spec.paper_remon = ip_bar;
  return spec;
}

}  // namespace

double GeoMean(const std::vector<double>& xs) {
  double log_sum = 0;
  int n = 0;
  for (double x : xs) {
    if (x > 0) {
      log_sum += std::log(x);
      ++n;
    }
  }
  return n > 0 ? std::exp(log_sum / n) : 0;
}

WorkloadSpec SyncVariant(WorkloadSpec spec, int sync_ops, int max_iterations,
                         int min_threads) {
  spec.sync_ops = sync_ops;
  spec.threads = std::max(spec.threads, min_threads);
  spec.iterations = std::min(spec.iterations, max_iterations);
  return spec;
}

std::vector<WorkloadSpec> ParsecSuite() {
  // Paper bars (no-IPMON, IPMON @ NONSOCKET_RW), Fig. 3 left, 4 worker threads.
  return {
      FromBars("blackscholes", "parsec", 4, 1.09, 1.04),
      FromBars("bodytrack", "parsec", 4, 1.15, 1.03),
      FromBars("dedup", "parsec", 4, 3.53, 1.69, 0.2, 4096),
      FromBars("facesim", "parsec", 4, 1.11, 1.03),
      FromBars("ferret", "parsec", 4, 1.04, 1.11),
      FromBars("fluidanimate", "parsec", 4, 1.28, 1.33),
      FromBars("freqmine", "parsec", 4, 1.06, 1.05),
      FromBars("raytrace", "parsec", 4, 1.03, 1.00),
      FromBars("streamcluster", "parsec", 4, 1.16, 0.97),
      FromBars("swaptions", "parsec", 4, 1.07, 1.07),
      FromBars("vips", "parsec", 4, 1.10, 1.03),
      FromBars("x264", "parsec", 4, 1.11, 1.16),
  };
}

std::vector<WorkloadSpec> SplashSuite() {
  return {
      FromBars("barnes", "splash", 4, 1.48, 1.52),
      FromBars("fft", "splash", 4, 1.03, 1.02),
      FromBars("fmm", "splash", 4, 1.55, 1.13),
      FromBars("lu_cb", "splash", 4, 1.01, 1.00),
      FromBars("lu_ncb", "splash", 4, 0.94, 0.95),
      FromBars("ocean_cp", "splash", 4, 1.06, 1.05),
      FromBars("ocean_ncp", "splash", 4, 1.09, 1.05),
      FromBars("radiosity", "splash", 4, 1.63, 1.38),
      FromBars("radix", "splash", 4, 1.05, 1.05),
      FromBars("raytrace", "splash", 4, 1.17, 1.02),
      FromBars("volrend", "splash", 4, 1.22, 1.07),
      FromBars("water_nsquared", "splash", 4, 1.04, 1.02),
      FromBars("water_spatial", "splash", 4, 4.20, 1.21, 0.1),
  };
}

std::vector<WorkloadSpec> PhoronixSuite() {
  // Fig. 4 ladders: {no-IPMON, BASE, NONSOCKET_RO, NONSOCKET_RW, SOCKET_RO, SOCKET_RW}.
  std::vector<WorkloadSpec> suite;
  {
    double bars[6] = {1.11, 1.11, 1.04, 1.04, 1.04, 1.05};
    suite.push_back(FromLadder("compress-gzip", "phoronix", 1, bars, 0.2, 4096));
  }
  {
    double bars[6] = {1.17, 1.17, 1.08, 1.02, 1.02, 1.02};
    suite.push_back(FromLadder("encode-flac", "phoronix", 1, bars, 0.2, 4096));
  }
  {
    double bars[6] = {1.09, 1.10, 1.06, 1.01, 1.01, 1.01};
    suite.push_back(FromLadder("encode-ogg", "phoronix", 1, bars, 0.2, 4096));
  }
  {
    double bars[6] = {1.05, 1.04, 1.01, 1.00, 1.00, 1.00};
    suite.push_back(FromLadder("mencoder", "phoronix", 1, bars, 0.2, 4096));
  }
  {
    double bars[6] = {2.48, 1.90, 1.90, 1.13, 1.13, 1.13};
    suite.push_back(FromLadder("phpbench", "phoronix", 1, bars, 0.2, 512));
  }
  {
    double bars[6] = {1.47, 1.48, 1.44, 1.22, 1.17, 1.17};
    suite.push_back(FromLadder("unpack-linux", "phoronix", 1, bars, 0.2, 8192));
  }
  {
    double bars[6] = {25.46, 25.36, 24.89, 17.03, 9.18, 3.00};
    suite.push_back(FromLadder("network-loopback", "phoronix", 1, bars, 0.03, 1024));
  }
  return suite;
}

std::vector<WorkloadSpec> SpecCpuSuite() {
  // SPEC CPU 2006 analog (Table 2): compute-bound, sparse system calls; intensities
  // reflect the published memory-boundedness of each benchmark.
  struct SpecRow {
    const char* name;
    double intensity;
  };
  const SpecRow rows[] = {
      {"perlbench", 0.020}, {"bzip2", 0.030},      {"gcc", 0.045},
      {"mcf", 0.110},       {"gobmk", 0.015},      {"hmmer", 0.005},
      {"sjeng", 0.010},     {"libquantum", 0.130}, {"h264ref", 0.020},
      {"omnetpp", 0.085},   {"astar", 0.040},      {"xalancbmk", 0.060},
  };
  std::vector<WorkloadSpec> suite;
  for (const SpecRow& row : rows) {
    WorkloadSpec spec;
    spec.name = row.name;
    spec.suite = "spec";
    spec.threads = 1;
    spec.mem_intensity = row.intensity;
    spec.base_queries = 1;
    spec.file_reads = 1;
    spec.compute_per_iter = Millis(2);  // ~1k calls/s: SPEC syscall rates are tiny.
    spec.iterations = 100;
    spec.io_size = 1024;
    spec.paper_ghumvee = 1.121;  // SPECint averages reported in Table 2.
    spec.paper_remon = 1.031;
    suite.push_back(spec);
  }
  return suite;
}

ProgramFn SuiteProgram(const WorkloadSpec& spec) {
  return [spec](Guest& g) -> GuestTask<void> {
    // --- Setup ------------------------------------------------------------------
    GuestAddr join_pipe = g.Alloc(8);
    int64_t prc = co_await g.Pipe(join_pipe);
    REMON_CHECK(prc == 0);
    int join_rd = static_cast<int>(g.PeekU32(join_pipe));
    int join_wr = static_cast<int>(g.PeekU32(join_pipe + 4));

    // Loopback echo service (for sock_echoes): one echo thread per worker.
    uint16_t port = static_cast<uint16_t>(7000 + (spec.name.size() * 131) % 1000);
    int listen_fd = -1;
    if (spec.sock_echoes > 0) {
      int64_t lfd = co_await g.Socket(kAfInet, kSockStream);
      GuestAddr sa = g.Alloc(sizeof(GuestSockaddrIn));
      GuestSockaddrIn addr;
      addr.sin_port = port;
      addr.sin_addr = g.process()->machine();
      g.Poke(sa, &addr, sizeof(addr));
      REMON_CHECK(0 == co_await g.Bind(static_cast<int>(lfd), sa, sizeof(addr)));
      REMON_CHECK(0 == co_await g.Listen(static_cast<int>(lfd), spec.threads + 1));
      listen_fd = static_cast<int>(lfd);
      for (int e = 0; e < spec.threads; ++e) {
        uint64_t io_size = spec.io_size;  // By value: echo threads outlive this frame.
        uint64_t echo_fn =
            g.RegisterThreadFn([listen_fd, io_size](Guest& eg) -> GuestTask<void> {
              int64_t cfd = co_await eg.Accept(listen_fd, 0, 0);
              if (cfd < 0) {
                co_return;
              }
              GuestAddr buf = eg.Alloc(io_size);
              for (;;) {
                int64_t n = co_await eg.Read(static_cast<int>(cfd), buf, io_size);
                if (n <= 0) {
                  break;
                }
                co_await eg.Write(static_cast<int>(cfd), buf, static_cast<uint64_t>(n));
              }
              co_await eg.Close(static_cast<int>(cfd));
            });
        co_await g.SpawnThread(echo_fn);
      }
    }

    // Shared words for the sync rotation (see WorkloadSpec::sync_ops): `turn`
    // carries the next global acquisition slot, `pool` the racy shared counter
    // whose pops the rotation (and, when present, the sync agent) orders.
    GuestAddr turn = 0;
    GuestAddr pool = 0;
    if (spec.sync_ops > 0) {
      turn = g.Alloc(4);
      pool = g.Alloc(4);
      g.PokeU32(turn, 0);
      g.PokeU32(pool, 0);
    }

    // --- Workers ------------------------------------------------------------------
    auto worker_body = [spec, join_wr, port, turn, pool](int worker_id) -> ProgramFn {
      return [spec, join_wr, port, turn, pool, worker_id](Guest& wg) -> GuestTask<void> {
        GuestAddr buf = wg.Alloc(spec.io_size);
        GuestAddr tv = wg.Alloc(sizeof(GuestTimeval));
        GuestAddr st = wg.Alloc(sizeof(GuestStat));
        GuestAddr futex_word = wg.Alloc(4);
        std::string path = "/tmp/suite-" + spec.name + "-t" + std::to_string(worker_id);
        int64_t fd = co_await wg.Open(path, kO_CREAT | kO_RDWR);
        REMON_CHECK(fd >= 0);
        // Seed the file so reads have data.
        co_await wg.Pwrite(static_cast<int>(fd), buf, spec.io_size, 0);

        // Sync-rotation transcript: one append per iteration recording the
        // acquisition order this worker observed (byte-comparable across
        // replica placements).
        int sync_fd = -1;
        GuestAddr sync_buf = 0;
        if (spec.sync_ops > 0) {
          int64_t sfd = co_await wg.Open(
              "/tmp/suite-sync-" + spec.name + "-t" + std::to_string(worker_id),
              kO_CREAT | kO_RDWR);
          REMON_CHECK(sfd >= 0);
          sync_fd = static_cast<int>(sfd);
          sync_buf = wg.Alloc(64 * static_cast<uint64_t>(spec.sync_ops));
        }

        int sock = -1;
        if (spec.sock_echoes > 0) {
          int64_t s = co_await wg.Socket(kAfInet, kSockStream);
          GuestAddr sa = wg.Alloc(sizeof(GuestSockaddrIn));
          GuestSockaddrIn addr;
          addr.sin_port = port;
          addr.sin_addr = wg.process()->machine();
          wg.Poke(sa, &addr, sizeof(addr));
          int64_t crc = co_await wg.Connect(static_cast<int>(s), sa, sizeof(addr));
          REMON_CHECK(crc == 0);
          sock = static_cast<int>(s);
        }

        for (int iter = 0; iter < spec.iterations; ++iter) {
          co_await wg.Compute(spec.compute_per_iter);
          for (int i = 0; i < spec.base_queries; ++i) {
            if (i % 2 == 0) {
              co_await wg.Gettimeofday(tv);
            } else {
              co_await wg.Getpid();
            }
          }
          for (int i = 0; i < spec.file_metadata; ++i) {
            co_await wg.Fstat(static_cast<int>(fd), st);
          }
          for (int i = 0; i < spec.file_reads; ++i) {
            co_await wg.Pread(static_cast<int>(fd), buf, spec.io_size, 0);
          }
          for (int i = 0; i < spec.file_writes; ++i) {
            co_await wg.Pwrite(static_cast<int>(fd), buf, spec.io_size, 0);
          }
          for (int i = 0; i < spec.pipe_writes; ++i) {
            // Self-pipe round trip (write then read back).
            co_await wg.Pwrite(static_cast<int>(fd), buf, 64, 0);
            co_await wg.Pread(static_cast<int>(fd), buf, 64, 0);
          }
          for (int i = 0; i < spec.sock_echoes; ++i) {
            co_await wg.Write(sock, buf, spec.io_size);
            uint64_t got = 0;
            while (got < spec.io_size) {
              int64_t n = co_await wg.Read(sock, buf, spec.io_size - got);
              if (n <= 0) {
                break;
              }
              got += static_cast<uint64_t>(n);
            }
          }
          for (int i = 0; i < spec.futex_pairs; ++i) {
            co_await wg.Futex(futex_word, kFutexWake, 1);
          }
          if (spec.sync_ops > 0) {
            // Barrier rotation: global slot k = round * threads + worker_id.
            // The turn gate pins the acquisition order (so the popped value —
            // and with it the transcript bytes — cannot depend on replica or
            // placement timing); BeforeAcquire additionally records/replays
            // the order through the sync agent when the replica set has one.
            SyncAgent* agent = wg.process()->sync_agent;
            std::string lines;
            for (int s = 0; s < spec.sync_ops; ++s) {
              uint64_t round =
                  static_cast<uint64_t>(iter) * static_cast<uint64_t>(spec.sync_ops) +
                  static_cast<uint64_t>(s);
              uint32_t slot = static_cast<uint32_t>(
                  round * static_cast<uint64_t>(spec.threads) +
                  static_cast<uint64_t>(worker_id));
              while (wg.PeekU32(turn) != slot) {
                co_await wg.SleepNs(Micros(3));
              }
              uint32_t object = static_cast<uint32_t>(
                  1 + (round + static_cast<uint64_t>(worker_id)) % spec.sync_objects);
              if (agent != nullptr) {
                co_await agent->BeforeAcquire(wg, object);
              }
              uint32_t v = wg.PeekU32(pool);  // The racy shared pop.
              wg.PokeU32(pool, v + 1);
              REMON_CHECK(v == slot);
              wg.PokeU32(turn, slot + 1);
              lines += "s" + std::to_string(slot) + "o" + std::to_string(object) +
                       "v" + std::to_string(v) + ";";
            }
            REMON_CHECK(lines.size() <= 64 * static_cast<uint64_t>(spec.sync_ops));
            wg.Poke(sync_buf, lines.data(), lines.size());
            co_await wg.Write(sync_fd, sync_buf, lines.size());
          }
        }

        if (sync_fd >= 0) {
          co_await wg.Close(sync_fd);
        }
        if (sock >= 0) {
          co_await wg.Close(sock);
        }
        co_await wg.Close(static_cast<int>(fd));
        // Join protocol: one byte through the shared pipe (deterministic for the
        // main thread regardless of worker completion order).
        GuestAddr done = wg.Alloc(1);
        wg.Poke(done, "D", 1);
        co_await wg.Write(join_wr, done, 1);
      };
    };

    for (int t = 0; t < spec.threads; ++t) {
      uint64_t fn = g.RegisterThreadFn(worker_body(t));
      co_await g.SpawnThread(fn);
    }

    // Deterministic join: read exactly `threads` bytes.
    GuestAddr sink = g.Alloc(16);
    int collected = 0;
    while (collected < spec.threads) {
      int64_t n = co_await g.Read(join_rd, sink,
                                  static_cast<uint64_t>(spec.threads - collected));
      REMON_CHECK(n > 0);
      collected += static_cast<int>(n);
    }
    if (listen_fd >= 0) {
      co_await g.Close(listen_fd);
    }
    co_await g.Close(join_rd);
    co_await g.Close(join_wr);
  };
}

}  // namespace remon

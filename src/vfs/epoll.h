// epoll: scalable FD readiness notification (paper §3.9).
//
// Modern servers (the nginx/lighttpd/memcached analogs in src/workloads) drive their
// event loops with epoll, so IP-MON must replicate epoll results efficiently. The
// subtlety the paper highlights: epoll_event.data is opaque — often a heap pointer —
// and diversified replicas use *different* pointer values for the same logical FD.
// EpollFile therefore exposes the registered (fd -> data) association so IP-MON's
// shadow mapping can translate master results into each slave's own data values.

#ifndef SRC_VFS_EPOLL_H_
#define SRC_VFS_EPOLL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/vfs/file.h"

namespace remon {

class EpollFile : public File {
 public:
  EpollFile() = default;
  ~EpollFile() override;

  FdType type() const override { return FdType::kEpoll; }
  uint32_t Poll() const override;  // kPollIn when any watched file is ready.

  // EPOLL_CTL_{ADD,MOD,DEL}. Returns 0 or -errno.
  int Ctl(int op, int fd, std::shared_ptr<File> file, uint32_t events, uint64_t data);

  struct ReadyEvent {
    int fd = 0;
    uint32_t events = 0;
    uint64_t data = 0;
  };
  // Collects currently-ready events, up to `max` (level-triggered).
  std::vector<ReadyEvent> Collect(int max) const;

  // The registered data value for `fd` (IP-MON shadow-map support).
  bool LookupData(int fd, uint64_t* out) const;

  size_t watch_count() const { return watches_.size(); }

 private:
  struct Watch {
    std::shared_ptr<File> file;
    uint32_t events = 0;
    uint64_t data = 0;
    uint64_t observer_id = 0;
  };

  std::map<int, Watch> watches_;
};

}  // namespace remon

#endif  // SRC_VFS_EPOLL_H_

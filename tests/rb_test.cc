// Unit tests for the replication buffer and the file map.

#include <gtest/gtest.h>

#include "src/core/file_map.h"
#include "src/core/replication_buffer.h"
#include "tests/test_util.h"

namespace remon {
namespace {

class RbTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kRbSize = 1 << 20;
  static constexpr int kRanks = 4;

  void SetUp() override {
    master_ = w_.NewProcess("rb-master");
    slave_ = w_.NewProcess("rb-slave");
    // Shared frames mapped at different addresses, as in the real system.
    ASSERT_TRUE(master_->mem().MapFixed(0x7100'0000'0000ULL, kRbSize,
                                        kProtRead | kProtWrite, true, "rb"));
    std::vector<PageRef> frames = master_->mem().FramesFor(0x7100'0000'0000ULL, kRbSize);
    ASSERT_TRUE(slave_->mem().MapFixedBacked(0x7f33'0000'0000ULL, kRbSize,
                                             kProtRead | kProtWrite, true, "rb", frames));
    master_view_ = RbView(master_, 0x7100'0000'0000ULL, kRbSize, kRanks);
    slave_view_ = RbView(slave_, 0x7f33'0000'0000ULL, kRbSize, kRanks);
  }

  SimWorld w_;
  Process* master_ = nullptr;
  Process* slave_ = nullptr;
  RbView master_view_;
  RbView slave_view_;
};

TEST_F(RbTest, LayoutPartitionsRanks) {
  EXPECT_EQ(master_view_.SubBufferSize(), (kRbSize - kRbGlobalHeaderSize) / kRanks);
  for (int r = 0; r + 1 < kRanks; ++r) {
    EXPECT_EQ(master_view_.RankDataEnd(r), master_view_.RankStart(r + 1));
    EXPECT_GT(master_view_.RankDataStart(r), master_view_.RankStart(r));
  }
  EXPECT_LE(master_view_.RankDataEnd(kRanks - 1), kRbSize);
}

TEST_F(RbTest, WritesVisibleThroughOtherMapping) {
  master_view_.WriteU64(128, 0xfeedface12345678ULL);
  EXPECT_EQ(slave_view_.ReadU64(128), 0xfeedface12345678ULL);
}

TEST_F(RbTest, SignalsPendingFlagShared) {
  EXPECT_FALSE(slave_view_.SignalsPending());
  master_view_.SetSignalsPending(true);
  EXPECT_TRUE(slave_view_.SignalsPending());
  master_view_.SetSignalsPending(false);
  EXPECT_FALSE(slave_view_.SignalsPending());
}

TEST_F(RbTest, EntryLifecycle) {
  uint64_t off = master_view_.RankDataStart(0);
  std::vector<uint8_t> sig = {1, 2, 3, 4, 5};
  uint64_t size = RbEntryOps::EntrySize(sig.size(), 64);
  EXPECT_EQ(size % 8, 0u);

  // Initially empty through either view.
  EXPECT_EQ(RbEntryOps::ReadHeader(slave_view_, off).state, kRbEmpty);

  RbEntryOps::CommitArgs(master_view_, off, Sys::kRead,
                         kRbFlagMasterCall | kRbFlagMaybeBlocking, 7, size, sig);
  RbEntryHeader h = RbEntryOps::ReadHeader(slave_view_, off);
  EXPECT_EQ(h.state, kRbArgsReady);
  EXPECT_EQ(h.sysno, static_cast<uint32_t>(Sys::kRead));
  EXPECT_EQ(h.seq, 7u);
  EXPECT_TRUE(h.flags & kRbFlagMaybeBlocking);
  EXPECT_EQ(RbEntryOps::ReadSignature(slave_view_, off), sig);

  std::vector<uint8_t> payload = {9, 9, 9};
  uint32_t waiters = RbEntryOps::CommitResults(master_view_, off, 42, payload);
  EXPECT_EQ(waiters, 0u);
  h = RbEntryOps::ReadHeader(slave_view_, off);
  EXPECT_EQ(h.state, kRbResultsReady);
  EXPECT_EQ(h.result, 42);
  EXPECT_EQ(RbEntryOps::ReadPayload(slave_view_, off), payload);
}

TEST_F(RbTest, WaiterCountTracksSlaves) {
  uint64_t off = master_view_.RankDataStart(1);
  std::vector<uint8_t> sig = {1};
  RbEntryOps::CommitArgs(master_view_, off, Sys::kWrite, 0, 0, 64, sig);
  RbEntryOps::AddWaiter(slave_view_, off);
  RbEntryOps::AddWaiter(slave_view_, off);
  EXPECT_EQ(RbEntryOps::ReadHeader(master_view_, off).waiters, 2u);
  uint32_t woken = RbEntryOps::CommitResults(master_view_, off, 0, {});
  EXPECT_EQ(woken, 2u);  // Master must issue FUTEX_WAKE.
  RbEntryOps::RemoveWaiter(slave_view_, off);
  RbEntryOps::RemoveWaiter(slave_view_, off);
  EXPECT_EQ(RbEntryOps::ReadHeader(master_view_, off).waiters, 0u);
}

TEST_F(RbTest, ZeroClearsRange) {
  uint64_t off = master_view_.RankDataStart(2);
  master_view_.WriteU64(off, 0x1111111111111111ULL);
  master_view_.WriteU64(off + 4096, 0x2222222222222222ULL);
  master_view_.Zero(off, 8192);
  EXPECT_EQ(slave_view_.ReadU64(off), 0u);
  EXPECT_EQ(slave_view_.ReadU64(off + 4096), 0u);
}

TEST_F(RbTest, EntrySizeAlignsAndCovers) {
  for (uint64_t sig : {0ULL, 1ULL, 63ULL, 64ULL, 1000ULL}) {
    for (uint64_t out : {0ULL, 8ULL, 4096ULL}) {
      uint64_t size = RbEntryOps::EntrySize(sig, out);
      EXPECT_EQ(size % 8, 0u);
      EXPECT_GE(size, kRbEntryHeaderSize + sig + out);
    }
  }
}

// --- FileMap --------------------------------------------------------------------

TEST(FileMapTest, SetClearLookup) {
  FileMap fm;
  EXPECT_FALSE(fm.IsValid(5));
  EXPECT_EQ(fm.TypeOf(5), FdType::kFree);
  fm.Set(5, FdType::kSocket, true);
  EXPECT_TRUE(fm.IsValid(5));
  EXPECT_EQ(fm.TypeOf(5), FdType::kSocket);
  EXPECT_TRUE(fm.IsNonblocking(5));
  fm.Clear(5);
  EXPECT_FALSE(fm.IsValid(5));
}

TEST(FileMapTest, NonblockingToggle) {
  FileMap fm;
  fm.Set(3, FdType::kPipe, false);
  EXPECT_FALSE(fm.IsNonblocking(3));
  fm.SetNonblocking(3, true);
  EXPECT_TRUE(fm.IsNonblocking(3));
  EXPECT_EQ(fm.TypeOf(3), FdType::kPipe);  // Type survives the flag change.
  fm.SetNonblocking(3, false);
  EXPECT_FALSE(fm.IsNonblocking(3));
}

TEST(FileMapTest, OutOfRangeIsSafe) {
  FileMap fm;
  fm.Set(-1, FdType::kSocket, false);
  fm.Set(FileMap::kMaxFds + 10, FdType::kSocket, false);
  EXPECT_FALSE(fm.IsValid(-1));
  EXPECT_FALSE(fm.IsValid(FileMap::kMaxFds + 10));
}

TEST(FileMapTest, IsOnePageAsInPaper) {
  // "We maintain exactly one byte of metadata per FD, resulting in a page-sized
  // file map."
  EXPECT_EQ(static_cast<uint64_t>(FileMap::kMaxFds), kPageSize);
}

TEST(FileMapTest, SharedPageVisibleThroughGuestMapping) {
  SimWorld w;
  Process* p = w.NewProcess("fm");
  FileMap fm;
  ASSERT_TRUE(p->mem().MapFixedBacked(0x7e00'0000'0000ULL, kPageSize, kProtRead, true,
                                      "ipmon-filemap", {fm.page()}));
  fm.Set(9, FdType::kSocket, true);
  uint8_t byte = 0;
  ASSERT_TRUE(p->mem().Read(0x7e00'0000'0000ULL + 9, &byte, 1).ok);
  EXPECT_EQ(byte & FileMap::kTypeMask, static_cast<uint8_t>(FdType::kSocket));
  EXPECT_TRUE(byte & FileMap::kNonblockBit);
  // The mapping is read-only: replicas cannot forge metadata.
  EXPECT_FALSE(p->mem().Write(0x7e00'0000'0000ULL + 9, &byte, 1).ok);
}

}  // namespace
}  // namespace remon

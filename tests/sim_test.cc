// Unit tests for the discrete-event simulation core.

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/cost_model.h"
#include "src/sim/cpu.h"
#include "src/sim/event_queue.h"
#include "src/sim/rng.h"
#include "src/sim/simulator.h"

namespace remon {
namespace {

TEST(EventQueueTest, RunsEventsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(30, [&] { order.push_back(3); });
  q.ScheduleAt(10, [&] { order.push_back(1); });
  q.ScheduleAt(20, [&] { order.push_back(2); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30);
}

TEST(EventQueueTest, SameTimeEventsRunFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.ScheduleAt(5, [&order, i] { order.push_back(i); });
  }
  q.RunAll();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(EventQueueTest, ScheduleAfterUsesCurrentTime) {
  EventQueue q;
  TimeNs seen = -1;
  q.ScheduleAt(100, [&] {
    q.ScheduleAfter(50, [&] { seen = q.now(); });
  });
  q.RunAll();
  EXPECT_EQ(seen, 150);
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  EventQueue::EventId id = q.ScheduleAt(10, [&] { ran = true; });
  EXPECT_TRUE(q.Cancel(id));
  q.RunAll();
  EXPECT_FALSE(ran);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, CancelledEventDoesNotAdvanceClock) {
  EventQueue q;
  EventQueue::EventId id = q.ScheduleAt(1000, [] {});
  q.ScheduleAt(10, [] {});
  q.Cancel(id);
  q.RunAll();
  EXPECT_EQ(q.now(), 10);
}

TEST(EventQueueTest, RunUntilStopsAtDeadline) {
  EventQueue q;
  int count = 0;
  q.ScheduleAt(10, [&] { ++count; });
  q.ScheduleAt(20, [&] { ++count; });
  q.ScheduleAt(30, [&] { ++count; });
  EXPECT_EQ(q.RunUntil(20), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(q.empty());
}

TEST(EventQueueTest, EventsCanScheduleMoreEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) {
      q.ScheduleAfter(1, chain);
    }
  };
  q.ScheduleAt(0, chain);
  q.RunAll();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(q.now(), 99);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next64(), b.Next64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.Next64() != b.Next64()) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 10);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextBoolRespectsProbability) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.NextBool(0.25)) {
      ++hits;
    }
  }
  EXPECT_NEAR(hits, 2500, 200);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(5);
  Rng child = a.Fork();
  EXPECT_NE(a.Next64(), child.Next64());
}

TEST(CpuPoolTest, SingleEntityRunsBackToBack) {
  CpuPool pool(4, 1000);
  auto g1 = pool.Acquire(1, 0, 500, -1);
  // First acquisition charges a context switch (core previously idle/other).
  EXPECT_EQ(g1.start, 1000);
  EXPECT_EQ(g1.end, 1500);
  auto g2 = pool.Acquire(1, g1.end, 500, g1.core);
  EXPECT_FALSE(g2.context_switched);
  EXPECT_EQ(g2.start, 1500);
}

TEST(CpuPoolTest, DistinctEntitiesUseDistinctCores) {
  CpuPool pool(4, 100);
  auto g1 = pool.Acquire(1, 0, 1000, -1);
  auto g2 = pool.Acquire(2, 0, 1000, -1);
  EXPECT_NE(g1.core, g2.core);
  // Both start at the same (post-switch) time: true parallelism.
  EXPECT_EQ(g1.start, g2.start);
}

TEST(CpuPoolTest, OversubscriptionQueues) {
  CpuPool pool(1, 0);
  auto g1 = pool.Acquire(1, 0, 1000, -1);
  auto g2 = pool.Acquire(2, 0, 1000, -1);
  EXPECT_EQ(g2.start, g1.end);
}

TEST(CpuPoolTest, ContextSwitchCounted) {
  CpuPool pool(1, 50);
  pool.Acquire(1, 0, 10, -1);
  pool.Acquire(2, 0, 10, -1);
  pool.Acquire(1, 0, 10, -1);
  EXPECT_EQ(pool.context_switches(), 3u);
}

TEST(CostModelTest, DilationGrowsWithReplicas) {
  CostModel c;
  EXPECT_DOUBLE_EQ(c.ComputeDilation(1.0, 1), 1.0);
  EXPECT_GT(c.ComputeDilation(1.0, 2), 1.0);
  EXPECT_GT(c.ComputeDilation(1.0, 4), c.ComputeDilation(1.0, 2));
  EXPECT_DOUBLE_EQ(c.ComputeDilation(0.0, 4), 1.0);
}

TEST(CostModelTest, SmallerCacheDilatesMore) {
  CostModel big;
  big.llc_mb = 20;
  CostModel small = big;
  small.llc_mb = 8;
  EXPECT_GT(small.ComputeDilation(0.5, 2), big.ComputeDilation(0.5, 2));
}

TEST(SimulatorTest, RunDrainsQueue) {
  Simulator sim(1);
  int count = 0;
  sim.queue().ScheduleAt(10, [&] { ++count; });
  sim.queue().ScheduleAt(20, [&] { ++count; });
  EXPECT_EQ(sim.Run(), 2u);
  EXPECT_EQ(sim.now(), 20);
}

}  // namespace
}  // namespace remon

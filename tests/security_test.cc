// Security tests: the attack scenarios of paper §4, plus the contrasts between the
// designs (ReMon vs the VARAN-like reliability monitor).

#include <gtest/gtest.h>

#include <cstring>

#include "src/core/rb_auth.h"
#include "src/core/rb_wire.h"
#include "src/core/remon.h"
#include "src/core/replication_buffer.h"
#include "tests/test_util.h"

namespace remon {
namespace {

RemonOptions RemonAt(PolicyLevel level, int replicas = 2) {
  RemonOptions opts;
  opts.mode = MveeMode::kRemon;
  opts.replicas = replicas;
  opts.level = level;
  return opts;
}

// --- Authorization tokens (§3.1, §4 "Unmonitored execution of system calls") ----

TEST(SecurityTest, TokensAreOneTime) {
  SimWorld w(101);
  Remon mvee(&w.kernel, RemonAt(PolicyLevel::kNonsocketRw));
  mvee.Launch([](Guest& g) -> GuestTask<void> {
    co_await g.Getpid();
    co_return;
  });
  w.Run();
  Thread* t = mvee.master()->threads[0];
  t->cur_req.nr = Sys::kRead;
  uint64_t token = mvee.broker()->IssueToken(t);
  EXPECT_TRUE(mvee.broker()->VerifyToken(t, token, Sys::kRead));
  // Replay: the same token must not verify twice.
  EXPECT_FALSE(mvee.broker()->VerifyToken(t, token, Sys::kRead));
}

TEST(SecurityTest, TokenBoundToForwardedCall) {
  // "If IP-MON executes a different system call ... IK-B revokes the token."
  SimWorld w(102);
  Remon mvee(&w.kernel, RemonAt(PolicyLevel::kNonsocketRw));
  mvee.Launch([](Guest& g) -> GuestTask<void> { co_return; });
  w.Run();
  Thread* t = mvee.master()->threads[0];
  t->cur_req.nr = Sys::kRead;
  uint64_t token = mvee.broker()->IssueToken(t);
  // The attacker restarts a *different* call with a stolen valid token.
  EXPECT_FALSE(mvee.broker()->VerifyToken(t, token, Sys::kOpen));
  // And the token is now revoked even for the right call.
  EXPECT_FALSE(mvee.broker()->VerifyToken(t, token, Sys::kRead));
  EXPECT_GT(w.sim.stats().tokens_revoked, 0u);
}

TEST(SecurityTest, TokensAreUnpredictable) {
  // 64-bit tokens from the kernel PRNG: distinct across issues (guessing argument
  // of §4; the full entropy argument is over the PRNG).
  SimWorld w(103);
  Remon mvee(&w.kernel, RemonAt(PolicyLevel::kNonsocketRw));
  mvee.Launch([](Guest& g) -> GuestTask<void> { co_return; });
  w.Run();
  Thread* t = mvee.master()->threads[0];
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t token = mvee.broker()->IssueToken(t);
    EXPECT_NE(token, 0u);
    seen.insert(token);
  }
  EXPECT_EQ(seen.size(), 1000u);
}

// --- RB hiding (§3.1, §4 "Manipulating the RB") --------------------------------

TEST(SecurityTest, RbAddressGuessingFaults) {
  // An attacker guessing the RB address with a wild read takes SIGSEGV and the
  // divergence is detected — the 24-bits-of-entropy argument's enforcement side.
  SimWorld w(104);
  Remon mvee(&w.kernel, RemonAt(PolicyLevel::kNonsocketRw));
  mvee.Launch([](Guest& g) -> GuestTask<void> {
    co_await g.Getpid();
    if (g.process()->replica_index == 0) {
      // Compromised master probes a guessed RB location.
      uint8_t probe = 0;
      co_await g.TryPeek(0x7f12'3456'7000ULL, &probe, 1);
    }
    co_await g.Getpid();
  });
  w.Run();
  EXPECT_TRUE(mvee.divergence_detected());
}

TEST(SecurityTest, RbMappedAtDifferentAddressesPerReplica) {
  SimWorld w(105);
  Remon mvee(&w.kernel, RemonAt(PolicyLevel::kNonsocketRw, 3));
  mvee.Launch([](Guest& g) -> GuestTask<void> {
    co_await g.Getpid();
    co_return;
  });
  w.Run();
  GuestAddr a0 = mvee.ipmon(0)->rb().base();
  GuestAddr a1 = mvee.ipmon(1)->rb().base();
  GuestAddr a2 = mvee.ipmon(2)->rb().base();
  EXPECT_NE(a0, 0u);
  EXPECT_NE(a0, a1);
  EXPECT_NE(a1, a2);
  EXPECT_NE(a0, a2);
}

TEST(SecurityTest, RbTamperingByCompromisedMasterDetected) {
  // The attacker knows the RB address (somehow) and rewrites a logged entry to feed
  // the slaves fake results. The slaves' argument check fires on the next mismatch,
  // or the tampering corrupts the protocol — either way the MVEE halts.
  SimWorld w(106);
  Remon mvee(&w.kernel, RemonAt(PolicyLevel::kNonsocketRw));
  mvee.Launch([&mvee](Guest& g) -> GuestTask<void> {
    int64_t fd = co_await g.Open("/tmp/t", kO_CREAT | kO_RDWR);
    GuestAddr buf = g.Alloc(64);
    g.Poke(buf, "AAAA", 4);
    co_await g.Write(static_cast<int>(fd), buf, 4);
    if (g.process()->replica_index == 0) {
      // Master tampers with its own upcoming entry region: corrupt the rank-0
      // sub-buffer (host-level model of an arbitrary-write primitive).
      RbView rb = mvee.ipmon(0)->rb();
      rb.WriteU32(rb.RankDataStart(0) + kRbOffState, 0xdead);
    }
    co_await g.Write(static_cast<int>(fd), buf, 4);
    co_await g.Close(static_cast<int>(fd));
  });
  w.Run();
  // Two acceptable outcomes, depending on who reaches the poisoned entry first:
  //  * the master's PRECALL overwrites the poison (state word is committed last), or
  //  * the slave reads the poisoned entry and its argument check crashes the MVEE.
  // What must NEVER happen is silent corruption: a finished, undiverged run must
  // have produced exactly the correct file.
  if (mvee.finished() && !mvee.divergence_detected()) {
    EXPECT_EQ(w.fs.ReadWholeFile("/tmp/t").value_or(""), "AAAAAAAA");
  }
}

// --- Policy containment --------------------------------------------------------

TEST(SecurityTest, SensitiveCallsStayInLockstepAtTopLevel) {
  SimWorld w(107);
  Remon mvee(&w.kernel, RemonAt(PolicyLevel::kSocketRw));
  mvee.Launch([](Guest& g) -> GuestTask<void> {
    int64_t fd = co_await g.Open("/tmp/x", kO_CREAT | kO_RDWR);  // FD lifecycle.
    int64_t m = co_await g.Mmap(0, 8192, kProtRead | kProtWrite, kMapPrivate);
    co_await g.Mprotect(static_cast<GuestAddr>(m), 8192, kProtRead);
    co_await g.Close(static_cast<int>(fd));
  });
  w.Run();
  EXPECT_FALSE(mvee.divergence_detected());
  // Every one of those calls went through GHUMVEE even at the most relaxed level.
  EXPECT_GE(w.sim.stats().syscalls_monitored, 4u);
}

TEST(SecurityTest, MaybeCheckedRejectsSocketReadAtNonsocketLevel) {
  // A conditionally-allowed call on the wrong FD type must take the 4' path.
  SimWorld w(108);
  RemonOptions opts = RemonAt(PolicyLevel::kNonsocketRo);
  opts.machine = 0;
  Remon mvee(&w.kernel, opts);
  mvee.Launch([](Guest& g) -> GuestTask<void> {
    // Socket pair via loopback.
    int64_t lfd = co_await g.Socket(kAfInet, kSockStream);
    GuestAddr sa = g.Alloc(sizeof(GuestSockaddrIn));
    GuestSockaddrIn addr;
    addr.sin_port = 901;
    addr.sin_addr = g.process()->machine();
    g.Poke(sa, &addr, sizeof(addr));
    co_await g.Bind(static_cast<int>(lfd), sa, sizeof(addr));
    co_await g.Listen(static_cast<int>(lfd), 4);
    int64_t c = co_await g.Socket(kAfInet, kSockStream);
    co_await g.Connect(static_cast<int>(c), sa, sizeof(addr));
    int64_t srv = co_await g.Accept(static_cast<int>(lfd), 0, 0);
    GuestAddr buf = g.Alloc(64);
    g.Poke(buf, "ping", 4);
    co_await g.Write(static_cast<int>(c), buf, 4);   // Socket write: monitored.
    co_await g.Read(static_cast<int>(srv), buf, 4);  // Socket read: monitored.
    co_await g.Close(static_cast<int>(c));
    co_await g.Close(static_cast<int>(srv));
    co_await g.Close(static_cast<int>(lfd));
  });
  w.Run();
  EXPECT_FALSE(mvee.divergence_detected());
  EXPECT_TRUE(mvee.finished());
  // The socket read/write were NOT handled by IP-MON at this level: verify by
  // rerunning at SOCKET_RW and comparing unmonitored counts.
  SimWorld w2(108);
  Remon mvee2(&w2.kernel, RemonAt(PolicyLevel::kSocketRw));
  // (Same program rerun at the relaxed level.)
  // The comparison is indirect: at NONSOCKET_RO the socket I/O shows up as monitored.
  EXPECT_GT(w.sim.stats().ikb_forward_ipmon, 0u);
  EXPECT_GT(w.sim.stats().tokens_revoked, 0u);  // MAYBE_CHECKED destroyed tokens (4').
}

// --- Design contrast: VARAN-like monitor is fast but insecure -------------------

TEST(SecurityTest, VaranLikeDoesNotStopAsymmetricSensitiveCalls) {
  // Under the reliability-oriented monitor the master runs ahead and sensitive calls
  // are not locked: a compromised master's divergent unlink succeeds before any
  // check could stop it (the paper's §6 critique of VARAN for security use).
  SimWorld w(109);
  RemonOptions opts;
  opts.mode = MveeMode::kVaranLike;
  opts.replicas = 2;
  Remon mvee(&w.kernel, opts);
  w.fs.WriteWholeFile("/etc/critical.conf", "do-not-delete");
  mvee.Launch([](Guest& g) -> GuestTask<void> {
    co_await g.Getpid();
    if (g.process()->replica_index == 0) {
      co_await g.Unlink("/etc/critical.conf");  // The attack call: master-only.
    }
    co_await g.Getpid();
  });
  w.Run();
  // The damage is done: the file is gone.
  EXPECT_EQ(w.fs.Resolve("/etc/critical.conf"), nullptr);
}

TEST(SecurityTest, RemonStopsTheSameAttack) {
  SimWorld w(109);
  Remon mvee(&w.kernel, RemonAt(PolicyLevel::kSocketRw));
  w.fs.WriteWholeFile("/etc/critical.conf", "do-not-delete");
  mvee.Launch([](Guest& g) -> GuestTask<void> {
    co_await g.Getpid();
    if (g.process()->replica_index == 0) {
      co_await g.Unlink("/etc/critical.conf");
    }
    co_await g.Getpid();
  });
  w.Run();
  EXPECT_TRUE(mvee.divergence_detected());
  // unlink is always monitored: the lockstep mismatch fired before execution.
  EXPECT_NE(w.fs.Resolve("/etc/critical.conf"), nullptr);
}

// --- Diversification ------------------------------------------------------------

TEST(SecurityTest, DclGivesDisjointCodeAcrossManyReplicas) {
  SimWorld w(110);
  Remon mvee(&w.kernel, RemonAt(PolicyLevel::kSocketRw, 7));
  mvee.Launch([](Guest& g) -> GuestTask<void> { co_return; });
  w.Run();
  const auto& replicas = mvee.replicas();
  for (size_t i = 0; i < replicas.size(); ++i) {
    for (size_t j = i + 1; j < replicas.size(); ++j) {
      const LayoutPlan& a = replicas[i]->layout;
      const LayoutPlan& b = replicas[j]->layout;
      bool code_overlap = a.code_base < b.code_base + b.code_size &&
                          b.code_base < a.code_base + a.code_size;
      EXPECT_FALSE(code_overlap) << "replicas " << i << " and " << j;
      bool ipmon_overlap = a.ipmon_base < b.ipmon_base + b.ipmon_size &&
                           b.ipmon_base < a.ipmon_base + a.ipmon_size;
      EXPECT_FALSE(ipmon_overlap) << "replicas " << i << " and " << j;
    }
  }
}

TEST(SecurityTest, AslrRandomizesAcrossSeeds) {
  GuestAddr base1;
  GuestAddr base2;
  {
    SimWorld w(111);
    Remon mvee(&w.kernel, RemonAt(PolicyLevel::kSocketRw));
    mvee.Launch([](Guest& g) -> GuestTask<void> { co_return; });
    w.Run();
    base1 = mvee.master()->layout.code_base;
  }
  {
    SimWorld w(112);
    Remon mvee(&w.kernel, RemonAt(PolicyLevel::kSocketRw));
    mvee.Launch([](Guest& g) -> GuestTask<void> { co_return; });
    w.Run();
    base2 = mvee.master()->layout.code_base;
  }
  EXPECT_NE(base1, base2);
}

TEST(SecurityTest, RbMigrationMovesBufferTransparently) {
  // The paper's §4 extension: IK-B periodically relocates the RB, so even a leaked
  // address goes stale. Force frequent flushes with a small buffer and verify the
  // base moves while execution stays transparent.
  SimWorld w(114);
  RemonOptions opts = RemonAt(PolicyLevel::kNonsocketRw);
  opts.rb_size = 256 * 1024;
  opts.max_ranks = 4;
  opts.rb_migration = true;
  Remon mvee(&w.kernel, opts);
  GuestAddr base_after_init = 0;
  mvee.Launch([&](Guest& g) -> GuestTask<void> {
    int64_t fd = co_await g.Open("/tmp/mig.txt", kO_CREAT | kO_RDWR);
    GuestAddr buf = g.Alloc(2048);
    if (g.process()->replica_index == 0) {
      base_after_init = mvee.ipmon(0)->rb().base();  // Before any flush/migration.
    }
    for (int i = 0; i < 120; ++i) {
      co_await g.Write(static_cast<int>(fd), buf, 2048);
    }
    co_await g.Close(static_cast<int>(fd));
  });
  w.Run();
  EXPECT_TRUE(mvee.finished());
  EXPECT_FALSE(mvee.divergence_detected());
  EXPECT_GT(mvee.ipmon(0)->rb_migrations(), 0u);
  EXPECT_NE(base_after_init, 0u);
  EXPECT_NE(mvee.ipmon(0)->rb().base(), base_after_init);
  EXPECT_EQ(w.fs.ReadWholeFile("/tmp/mig.txt")->size(), 120u * 2048u);
}

// --- Authenticated RB transport (wire v4): active network adversaries --------------

// 3 replicas with the last one behind the RB transport, per-frame authentication on.
RemonOptions RemoteAuthOptions(SimWorld* w, int replicas = 3) {
  RemonOptions opts;
  opts.mode = MveeMode::kRemon;
  opts.replicas = replicas;
  opts.level = PolicyLevel::kNonsocketRw;
  opts.rb_size = 256 * 1024;
  opts.max_ranks = 4;
  opts.rb_auth = true;
  uint32_t host = w->net.AddMachine("replica-host-1");
  w->net.SetLink(w->server_machine, host, LinkParams{50 * kMicrosecond, 0.125});
  opts.machine = w->server_machine;
  opts.replica_machines.assign(static_cast<size_t>(replicas), w->server_machine);
  opts.replica_machines.back() = host;
  return opts;
}

ProgramFn WriterWorkload(int writes) {
  return [writes](Guest& g) -> GuestTask<void> {
    int64_t fd = co_await g.Open("/tmp/auth.dat", kO_CREAT | kO_RDWR);
    GuestAddr buf = g.Alloc(512);
    for (int i = 0; i < writes; ++i) {
      co_await g.Write(static_cast<int>(fd), buf, 512);
    }
    co_await g.Close(static_cast<int>(fd));
  };
}

TEST(SecurityTest, AuthenticatedRemoteRunCompletesUntampered) {
  // Baseline sanity: with --rb-auth every frame is sealed, nothing is rejected,
  // and the run is indistinguishable from an unauthenticated one in outcome.
  SimWorld w(120);
  Remon mvee(&w.kernel, RemoteAuthOptions(&w));
  mvee.Launch(WriterWorkload(60), "auth");
  w.Run();
  EXPECT_TRUE(mvee.finished());
  EXPECT_FALSE(mvee.divergence_detected());
  EXPECT_EQ(w.fs.ReadWholeFile("/tmp/auth.dat")->size(), 60u * 512u);
  const SimStats& stats = w.sim.stats();
  EXPECT_GT(stats.rb_auth_frames_sealed, 0u);
  EXPECT_EQ(stats.rb_auth_frames_rejected, 0u);
  EXPECT_GE(stats.rb_auth_joins, 1u);  // The initial connection attested.
  EXPECT_EQ(stats.rb_auth_join_rejects, 0u);
  EXPECT_EQ(stats.rb_epoch_regressions, 0u);
}

TEST(SecurityTest, ForgedFrameRejectedAndLinkTorn) {
  // An on-path attacker without the secret forges a structurally perfect frame
  // (valid header, valid CRC under the v3 reading, plausible entry records). The
  // MAC check rejects it and the link is torn — never applied, never a hang.
  SimWorld w(121);
  Remon mvee(&w.kernel, RemoteAuthOptions(&w));
  mvee.Launch(WriterWorkload(40), "forge");
  w.Run();
  ASSERT_TRUE(mvee.finished());
  RemoteSyncAgent* agent = mvee.remote_agent(2);
  ASSERT_NE(agent, nullptr);
  ASSERT_FALSE(agent->link_torn());
  uint64_t rejects = agent->frames_rejected();
  uint64_t applied = agent->frames_applied();
  uint64_t auth_rejects = w.sim.stats().rb_auth_frames_rejected;

  RbWireEntry e;
  e.entry_off = kRbGlobalHeaderSize + kRbRankHeaderSize;
  e.final_state = kRbResultsReady;
  e.image.assign(kRbEntryHeaderSize, 0xa5);
  std::vector<uint8_t> forged =
      RbWireCodec::EncodeEntries(/*epoch=*/1, /*rank=*/0, /*frame_seq=*/0, {e});
  // Sealed under the attacker's own key — the best a secret-less forger can do.
  RbAuthContext attacker("not-the-real-secret");
  attacker.SealFrame(&forged, RbAuthDirection::kLeaderToReplica);
  agent->InjectRawBytesForTest(forged.data(), forged.size());

  EXPECT_TRUE(agent->link_torn());
  EXPECT_EQ(agent->frames_rejected(), rejects + 1);
  EXPECT_EQ(agent->frames_applied(), applied);  // Nothing reached the mirror.
  EXPECT_EQ(w.sim.stats().rb_auth_frames_rejected, auth_rejects + 1);

  // The torn link is latched: even a genuinely sealed frame is dead on arrival.
  std::vector<uint8_t> late =
      RbWireCodec::EncodeEntries(/*epoch=*/1, /*rank=*/0, /*frame_seq=*/0, {e});
  RbAuthContext real(mvee.options().rb_auth_secret);
  real.SealFrame(&late, RbAuthDirection::kLeaderToReplica);
  agent->InjectRawBytesForTest(late.data(), late.size());
  EXPECT_EQ(agent->frames_applied(), applied);
}

TEST(SecurityTest, CrossEpochReplayRejectedAfterReseed) {
  // Replay across a key rotation: a frame captured before the epoch bump carries a
  // valid MAC under the *old* session key. Decryption succeeds (the old key is
  // derivable) but the epoch monotonicity gate tears the link — a peer re-sending
  // retired epochs is an adversary, not a straggler.
  SimWorld w(122);
  RemonOptions opts = RemoteAuthOptions(&w);
  opts.respawn_dead_replicas = true;
  Remon mvee(&w.kernel, opts);
  mvee.Launch(WriterWorkload(400), "replay");
  w.sim.queue().ScheduleAt(Micros(300), [&mvee] {
    RemoteSyncAgent* agent = mvee.remote_agent(2);
    if (agent != nullptr) {
      agent->Shutdown();  // Kill the link mid-run; respawn re-seeds at epoch 2.
    }
  });
  w.Run();
  ASSERT_TRUE(mvee.finished());
  ASSERT_FALSE(mvee.divergence_detected());
  RemoteSyncAgent* agent = mvee.remote_agent(2);
  ASSERT_NE(agent, nullptr);
  ASSERT_GE(agent->join_epoch(), 2u) << "kill did not land mid-run";
  ASSERT_GE(w.sim.stats().rb_auth_joins, 2u);  // Initial + attested re-join.
  ASSERT_FALSE(agent->link_torn());
  uint64_t regressions = w.sim.stats().rb_epoch_regressions;
  uint64_t applied = agent->frames_applied();

  RbWireEntry e;
  e.entry_off = kRbGlobalHeaderSize + kRbRankHeaderSize;
  e.final_state = kRbResultsReady;
  e.image.assign(kRbEntryHeaderSize, 0x11);
  std::vector<uint8_t> replayed = RbWireCodec::EncodeEntries(
      agent->join_epoch() - 1, /*rank=*/0, /*frame_seq=*/0, {e});
  RbAuthContext real(mvee.options().rb_auth_secret);
  real.SealFrame(&replayed, RbAuthDirection::kLeaderToReplica);
  agent->InjectRawBytesForTest(replayed.data(), replayed.size());

  EXPECT_TRUE(agent->link_torn());
  EXPECT_EQ(agent->frames_applied(), applied);
  EXPECT_EQ(w.sim.stats().rb_epoch_regressions, regressions + 1);
}

TEST(SecurityTest, TamperedAckFromCompromisedReplicaTearsLeaderLink) {
  // Compromised-replica scenario: the replica end of the link sends an ack that
  // was never sealed (or re-sealed wrong). The leader's MAC check rejects it and
  // marks the remote dead instead of trusting its cursor/ack state.
  SimWorld w(123);
  Remon mvee(&w.kernel, RemoteAuthOptions(&w));
  mvee.Launch(WriterWorkload(40), "tamper-ack");
  w.Run();
  ASSERT_TRUE(mvee.finished());
  RemoteSyncAgent* agent = mvee.remote_agent(2);
  ASSERT_NE(agent, nullptr);
  ASSERT_FALSE(agent->link_torn());
  uint64_t auth_rejects = w.sim.stats().rb_auth_frames_rejected;
  uint64_t deaths = w.sim.stats().rb_remote_deaths;

  // A plausible unsealed ack claiming everything was acknowledged.
  agent->SendRawAckForTest(RbWireCodec::EncodeAck(/*epoch=*/1, /*ack_seq=*/1,
                                                  /*sync_cursor=*/0));
  w.Run();  // Deliver the bytes; the leader's poll observer pumps them.

  EXPECT_GT(w.sim.stats().rb_auth_frames_rejected, auth_rejects);
  EXPECT_GT(w.sim.stats().rb_remote_deaths, deaths);
}

TEST(SecurityTest, MismatchedConfigDigestJoinRefused) {
  // Attested join, identity half: a joiner presenting a different config digest
  // (wrong build, wrong geometry, wrong descriptor registry — or an impostor) is
  // refused before any leader state is shipped, and the dead link surfaces as a
  // divergence report rather than a hang.
  SimWorld w(124);
  Remon mvee(&w.kernel, RemoteAuthOptions(&w));
  mvee.Launch(WriterWorkload(40), "bad-digest");
  RemoteSyncAgent* agent = mvee.remote_agent(2);
  ASSERT_NE(agent, nullptr);
  agent->OverrideAttestDigestForTest(0xbadc0ffee0ddf00dull);
  w.Run();
  EXPECT_GE(w.sim.stats().rb_auth_join_rejects, 1u);
  EXPECT_EQ(w.sim.stats().rb_auth_joins, 0u);
  EXPECT_EQ(agent->frames_applied(), 0u);  // The leader never started streaming.
  EXPECT_TRUE(mvee.divergence_detected());
}

TEST(SecurityTest, ReplacementSnapshotHeldUntilAttestSucceeds) {
  // Attested join, re-seed half: while every replacement join keeps presenting a
  // bad digest, the leader must never ship a checkpoint. The capped respawns then
  // surface as divergence (a joiner that keeps failing its attestation IS the
  // divergence), with zero snapshot frames on the wire.
  SimWorld w(125);
  RemonOptions opts = RemoteAuthOptions(&w);
  opts.respawn_dead_replicas = true;
  Remon mvee(&w.kernel, opts);
  mvee.Launch(WriterWorkload(400), "held-snapshot");
  w.sim.queue().ScheduleAt(Micros(300), [&mvee] {
    RemoteSyncAgent* agent = mvee.remote_agent(2);
    if (agent != nullptr) {
      agent->Shutdown();
    }
  });
  // Poison every agent generation's attestation for the rest of the run: ticks
  // cover each respawn window, so each replacement joins with the wrong digest.
  for (int i = 0; i < 200; ++i) {
    w.sim.queue().ScheduleAt(Micros(300 + 20 * i), [&mvee] {
      RemoteSyncAgent* agent = mvee.remote_agent(2);
      if (agent != nullptr) {
        agent->OverrideAttestDigestForTest(0xbadc0ffee0ddf00dull);
      }
    });
  }
  w.Run();
  EXPECT_GE(w.sim.stats().rb_auth_join_rejects, 1u);
  EXPECT_EQ(w.sim.stats().rb_snapshot_frames_sent, 0u);  // No checkpoint left home.
  EXPECT_EQ(w.sim.stats().rb_replica_joins, 0u);
  EXPECT_TRUE(mvee.divergence_detected());
}

TEST(SecurityTest, AuthInjectedInputNeverSilentlyCorrupts) {
  // Divergence-triggering injection: mid-run, an attacker who somehow *does* get a
  // frame onto the stream (here: validly sealed, so only lockstep can catch it)
  // poisons an RB entry in the remote mirror. Acceptable outcomes are a torn link
  // (the injection broke stream framing mid-frame) or lockstep divergence; what
  // must never happen is a finished run with corrupted output.
  SimWorld w(126);
  Remon mvee(&w.kernel, RemoteAuthOptions(&w));
  mvee.Launch(WriterWorkload(200), "inject");
  bool injected = false;
  w.sim.queue().ScheduleAt(Micros(400), [&mvee, &injected] {
    RemoteSyncAgent* agent = mvee.remote_agent(2);
    if (agent == nullptr || agent->link_torn()) {
      return;
    }
    injected = true;
    RbWireEntry e;
    e.entry_off = kRbGlobalHeaderSize + kRbRankHeaderSize;
    e.final_state = kRbResultsReady;
    e.image.assign(kRbEntryHeaderSize + 64, 0x5a);  // Garbage args/results.
    std::vector<uint8_t> frame =
        RbWireCodec::EncodeEntries(/*epoch=*/1, /*rank=*/0, /*frame_seq=*/0, {e});
    RbAuthContext real(mvee.options().rb_auth_secret);
    real.SealFrame(&frame, RbAuthDirection::kLeaderToReplica);
    agent->InjectRawBytesForTest(frame.data(), frame.size());
  });
  w.Run();
  ASSERT_TRUE(injected);
  if (mvee.finished() && !mvee.divergence_detected()) {
    EXPECT_EQ(w.fs.ReadWholeFile("/tmp/auth.dat")->size(), 200u * 512u);
  }
}

// --- Signal-based attacks ---------------------------------------------------------

TEST(SecurityTest, AsyncSignalsCannotDesyncReplicas) {
  // A storm of timer signals during unmonitored I/O must not cause divergence: the
  // §2.2/§3.8 deferral machinery delivers every signal at equivalent points.
  SimWorld w(113);
  Remon mvee(&w.kernel, RemonAt(PolicyLevel::kNonsocketRw));
  int handled = 0;
  mvee.Launch([&handled](Guest& g) -> GuestTask<void> {
    uint64_t cookie = g.RegisterHandler([&handled](Guest&, int) -> GuestTask<void> {
      ++handled;
      co_return;
    });
    co_await g.Sigaction(kSIGALRM, cookie);
    GuestAddr its = g.Alloc(sizeof(GuestItimerspec));
    GuestItimerspec spec;
    spec.it_value = GuestTimespec{0, Millis(1)};
    spec.it_interval = GuestTimespec{0, Millis(1)};
    g.Poke(its, &spec, sizeof(spec));
    co_await g.Syscall(Sys::kSetitimer, 0, its, 0);
    int64_t fd = co_await g.Open("/tmp/sig.dat", kO_CREAT | kO_RDWR);
    GuestAddr buf = g.Alloc(1024);
    for (int i = 0; i < 200; ++i) {
      co_await g.Compute(Micros(50));
      co_await g.Write(static_cast<int>(fd), buf, 1024);
    }
    // Disarm before exit.
    GuestItimerspec off{};
    g.Poke(its, &off, sizeof(off));
    co_await g.Syscall(Sys::kSetitimer, 0, its, 0);
    co_await g.Close(static_cast<int>(fd));
  });
  w.Run();
  EXPECT_FALSE(mvee.divergence_detected());
  EXPECT_TRUE(mvee.finished());
  EXPECT_GT(handled, 0);
  EXPECT_EQ(handled % 2, 0);  // Every delivery hit both replicas.
  EXPECT_GT(w.sim.stats().signals_deferred, 0u);
}

}  // namespace
}  // namespace remon

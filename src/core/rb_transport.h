// RB transport: carries the replication stream between machines.
//
// For replica sets that span simulated machines, the leader's IP-MON cannot reach
// remote slaves through shared frames. Instead each remote replica gets a *private
// mirror* of the RB (a machine-local SysV segment; see ShmRegistry::MirrorFor), and
// the replication stream travels as RbWireCodec frames over a StreamSocket pair:
//
//   leader machine                               remote machine
//   ┌────────────────────┐   frames (one per     ┌─────────────────────────┐
//   │ master IP-MON      │   flush/publication)  │ RemoteSyncAgent         │
//   │  └─ RbTransport ───┼──────────────────────▶│  └─ applies entry images│
//   │     (send queue,   │◀──────────────────────┼─     into the RB mirror,│
//   │      bounded in-   │   cumulative acks     │      wakes futex waiters│
//   │      flight frames)│                       │ slave IP-MON (unchanged)│
//   └────────────────────┘                       └─────────────────────────┘
//
// The slave-side fast path is untouched: a remote slave waits on, checks, and
// consumes RB entries exactly as a leader-local slave does — the agent replays the
// leader's publications into the mirror with the state-word flip last, so the
// transcript is byte-identical across placements.
//
// Multi-threaded replicas additionally need the master's sync-agent log
// (src/core/sync_agent.h): its appends stream as kSyncLog data frames over the
// same connection — coalesced per flush like entry batches — and the remote agent
// replays them into the replica's machine-local log mirror with the tail word
// stored last, so BeforeAcquire replay is placement-transparent too.
//
// Backpressure: the transport bounds the number of unacknowledged data frames per
// remote. When the bound is hit, the leader's flush points stall on stall_queue()
// until acks drain (IpMon::StallOnTransport), and each stall feeds the adaptive
// batch window's AIMD as grow pressure — coalescing more entries per frame is how
// a slow link is amortized.
//
// Remote death: a peer FIN/RST (or an agent Shutdown) marks the remote dead, bumps
// the stream epoch so stale frames of the torn connection cannot be confused with
// a future stream, wakes any stalled leader thread, and reports through the
// on_remote_death callback (wired to GHUMVEE's divergence shutdown) — a lost
// machine ends the run with a report, never a hang.
//
// Replica re-seed: instead of shrinking the set permanently, the front end can
// attach a *replacement* replica at the post-bump epoch (Remon::SpawnReplacement /
// --respawn-on-death). AddReplacement revives the dead remote's slot on a fresh
// connection whose first sequenced frames are the leader checkpoint
// (kSnapshotBegin/kSnapshotChunk/kSnapshotEnd, src/core/snapshot.h); data frames
// published afterwards queue behind it in order, so the replacement's mirror is
// exactly the leader's RB at every point it observes. Snapshot frames obey the
// same in-flight bound and cumulative acks as entry frames — a large checkpoint
// throttles the leader's flush points instead of ballooning the send queue.

#ifndef SRC_CORE_RB_TRANSPORT_H_
#define SRC_CORE_RB_TRANSPORT_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "src/core/rb_wire.h"
#include "src/core/snapshot.h"
#include "src/net/network.h"
#include "src/vfs/wait_queue.h"

namespace remon {

class IpMon;
class Kernel;

// Well-known base port remote sync agents listen on (port = base + replica index).
inline constexpr uint16_t kRbTransportPortBase = 47000;

// Leader-side frame pump: one connection per remote replica.
class RbTransport {
 public:
  struct Options {
    // Unacked data frames allowed per remote before flush points stall.
    int max_inflight_frames = 8;
  };

  RbTransport(Kernel* kernel, uint32_t leader_machine, Options options);
  ~RbTransport();
  RbTransport(const RbTransport&) = delete;
  RbTransport& operator=(const RbTransport&) = delete;

  // Registers (and starts connecting to) a remote replica's agent.
  void AddRemote(int replica_index, uint32_t machine, uint16_t port);

  // Revives a dead remote's slot as a replacement replica joining at the current
  // (post-bump) epoch: fresh connection, fresh per-connection sequence space, and
  // the serialized leader checkpoint enqueued ahead of all future data frames.
  void AddReplacement(int replica_index, uint32_t machine, uint16_t port,
                      const SnapshotPayloads& snapshot);

  // Broadcasts one publication — one frame — to every live remote. Never blocks:
  // frames queue locally; the in-flight bound is enforced at the leader's flush
  // points via Stalled()/stall_queue().
  void SendEntries(int rank, const std::vector<RbWireEntry>& entries);

  // Broadcasts one sync-agent log flush — one kSyncLog frame — to every live
  // remote. Sync frames are ordinary data frames: same sequence space, same
  // in-flight bound, same cumulative acks as entry frames.
  void SendSyncLog(uint64_t start_index, const std::vector<RbSyncLogRecord>& records);

  // True while any live remote has >= max_inflight_frames unacked data frames.
  bool Stalled() const;
  // Woken when acks drain below the bound or a remote dies.
  WaitQueue* stall_queue() { return &stall_queue_; }

  // Stream epoch: starts at 1, bumped on every remote death.
  uint32_t epoch() const { return epoch_; }
  int live_remotes() const;
  bool any_remote_dead() const { return deaths_ > 0; }

  // Invoked once per remote death with the replica index (after the epoch bump).
  void set_on_remote_death(std::function<void(int)> cb) { on_remote_death_ = std::move(cb); }

 private:
  struct Remote {
    int replica_index = -1;
    std::shared_ptr<StreamSocket> sock;
    std::deque<std::vector<uint8_t>> sendq;  // Framed bytes not yet written.
    size_t sendq_head_off = 0;               // Partial-write offset into sendq.front().
    uint64_t frames_sent = 0;                // Data frames enqueued (frame_seq source).
    uint64_t frames_acked = 0;               // Highest cumulative ack received.
    RbFrameParser parser;                    // For the ack stream.
    uint64_t observer_id = 0;
    bool dead = false;
  };

  void Pump(Remote& r);       // Drain sendq into the socket; read acks.
  void MarkDead(Remote& r, const char* why);
  bool RemoteStalled(const Remote& r) const {
    return !r.dead &&
           r.frames_sent - r.frames_acked >=
               static_cast<uint64_t>(options_.max_inflight_frames);
  }

  Kernel* kernel_;
  uint32_t leader_machine_;
  Options options_;
  uint32_t epoch_ = 1;
  uint64_t deaths_ = 0;
  std::function<void(int)> on_remote_death_;
  WaitQueue stall_queue_;
  std::vector<std::unique_ptr<Remote>> remotes_;
};

class SyncAgent;

// Remote-side agent: accepts the leader's connection on its machine, replays
// entry frames into the local replica's RB mirror (and sync-log frames into the
// replica's sync-agent log mirror), and acknowledges.
class RemoteSyncAgent {
 public:
  RemoteSyncAgent(Kernel* kernel, IpMon* mon, uint32_t machine, uint16_t port);
  ~RemoteSyncAgent();
  RemoteSyncAgent(const RemoteSyncAgent&) = delete;
  RemoteSyncAgent& operator=(const RemoteSyncAgent&) = delete;

  // The local replica's record/replay agent: kSyncLog frames replay into its
  // machine-local log mirror. Unset for single-threaded (agent-less) workloads —
  // receiving a sync frame without one is a configuration divergence.
  void set_sync_agent(SyncAgent* agent) { sync_agent_ = agent; }

  // Binds + listens; call before the leader's RbTransport connects.
  void Start();

  // The local replica's IP-MON finished Initialize (the RB mirror view is valid):
  // drain any frames that arrived early.
  void OnReplicaRbReady();

  // Tears the link down (FIN to the leader) — the remote-machine-death experiment.
  void Shutdown();

  uint64_t frames_applied() const { return frames_applied_; }
  uint64_t entries_applied() const { return entries_applied_; }
  uint64_t frames_rejected() const { return frames_rejected_; }
  // Re-seed observability: completed snapshot joins through this agent, and the
  // GHUMVEE lockstep cursor recorded in the last applied checkpoint (the
  // synchronization point the replacement resumed from).
  uint64_t joins() const { return joins_; }
  uint64_t last_join_lockstep_cursor() const { return last_join_lockstep_cursor_; }
  // The epoch floor this agent enforces on data frames (0 before any join).
  uint32_t join_epoch() const { return join_epoch_; }

  // Test seam: runs one decoded frame through the same dispatch DrainConn uses
  // (join-epoch floor, readiness pending, apply + ack). Returns true when the
  // frame was applied; the floor and divergence tests assert the false cases.
  bool InjectFrameForTest(RbWireFrame frame);

 private:
  void OnListenerPoll();
  void OnConnPoll();
  void DrainConn();
  // One decoded frame through the receive pipeline: snapshot handshake, data-type
  // filter, join-epoch floor, readiness pending, apply + ack.
  void HandleFrame(RbWireFrame frame);
  // True when the view the frame replays into (RB mirror or sync-log mirror) is
  // attached; frames arriving earlier wait in pending_.
  bool ReadyFor(const RbWireFrame& frame) const;
  void ApplyFrame(const RbWireFrame& frame);
  bool ApplyEntry(uint32_t rank, const RbWireEntry& entry);
  bool ApplySyncLog(const RbWireFrame& frame);
  void HandleSnapshotFrame(const RbWireFrame& frame);
  void SendAck(uint32_t epoch, uint64_t frame_seq);
  void FlushAckQueue();

  Kernel* kernel_;
  IpMon* mon_;
  SyncAgent* sync_agent_ = nullptr;
  uint32_t machine_;
  uint16_t port_;
  std::shared_ptr<StreamSocket> listener_;
  std::shared_ptr<StreamSocket> conn_;
  uint64_t listener_observer_ = 0;
  uint64_t conn_observer_ = 0;
  RbFrameParser parser_;
  std::vector<RbWireFrame> pending_;  // Frames received before the mirror exists.
  std::deque<std::vector<uint8_t>> ackq_;
  size_t ackq_head_off_ = 0;
  bool shutdown_ = false;
  uint64_t frames_applied_ = 0;
  uint64_t entries_applied_ = 0;
  uint64_t frames_rejected_ = 0;
  // Replica re-seed: checkpoint reassembly and the join-epoch floor — entry
  // frames older than the epoch the join was seeded at are stale by definition
  // (docs/RB_WIRE_FORMAT.md, "Join handshake").
  SnapshotAssembler assembler_;
  uint32_t join_epoch_ = 0;
  uint64_t joins_ = 0;
  uint64_t last_join_lockstep_cursor_ = 0;
};

}  // namespace remon

#endif  // SRC_CORE_RB_TRANSPORT_H_

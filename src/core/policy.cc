#include "src/core/policy.h"

#include "src/kernel/syscall_meta.h"

namespace remon {

namespace {

// The descriptor registry's PolicyClass values mirror PolicyLevel by construction
// (kNever == kNoIpmon == 0, ..., kSockRw == kSocketRw == 5); the policy engine is a
// thin interpreter over the per-syscall classification in syscall_meta.cc.
static_assert(static_cast<uint8_t>(PolicyClass::kNever) ==
              static_cast<uint8_t>(PolicyLevel::kNoIpmon));
static_assert(static_cast<uint8_t>(PolicyClass::kBase) ==
              static_cast<uint8_t>(PolicyLevel::kBase));
static_assert(static_cast<uint8_t>(PolicyClass::kNonsockRo) ==
              static_cast<uint8_t>(PolicyLevel::kNonsocketRo));
static_assert(static_cast<uint8_t>(PolicyClass::kNonsockRw) ==
              static_cast<uint8_t>(PolicyLevel::kNonsocketRw));
static_assert(static_cast<uint8_t>(PolicyClass::kSockRo) ==
              static_cast<uint8_t>(PolicyLevel::kSocketRo));
static_assert(static_cast<uint8_t>(PolicyClass::kSockRw) ==
              static_cast<uint8_t>(PolicyLevel::kSocketRw));

PolicyLevel AsLevel(PolicyClass c) { return static_cast<PolicyLevel>(c); }

// Minimum level at which a call is *unconditionally* exempt (Table 1, middle column).
// kNoIpmon means "never unconditionally exempt".
PolicyLevel UnconditionalLevel(Sys nr) { return AsLevel(DescOf(nr).uncond); }

// Conditional calls (Table 1, right column): the level at which they become exempt
// for *non-socket* FDs and for *socket* FDs respectively.
struct ConditionalRule {
  bool conditional = false;
  PolicyLevel nonsocket_level = PolicyLevel::kNoIpmon;
  PolicyLevel socket_level = PolicyLevel::kNoIpmon;
};

ConditionalRule ConditionalFor(Sys nr) {
  const SyscallDesc& d = DescOf(nr);
  return {d.conditional(), AsLevel(d.cond_nonsock), AsLevel(d.cond_sock)};
}

}  // namespace

std::string_view PolicyLevelName(PolicyLevel level) {
  switch (level) {
    case PolicyLevel::kNoIpmon: return "NO_IPMON";
    case PolicyLevel::kBase: return "BASE_LEVEL";
    case PolicyLevel::kNonsocketRo: return "NONSOCKET_RO_LEVEL";
    case PolicyLevel::kNonsocketRw: return "NONSOCKET_RW_LEVEL";
    case PolicyLevel::kSocketRo: return "SOCKET_RO_LEVEL";
    case PolicyLevel::kSocketRw: return "SOCKET_RW_LEVEL";
  }
  return "?";
}

RelaxationPolicy::RelaxationPolicy(PolicyLevel level, TemporalPolicy temporal)
    : level_(level), temporal_(temporal) {}

bool RelaxationPolicy::UnconditionallyExempt(Sys nr) const {
  if (ForcedCpCall(nr)) {
    return false;
  }
  PolicyLevel min = UnconditionalLevel(nr);
  return min != PolicyLevel::kNoIpmon && static_cast<uint8_t>(level_) >= static_cast<uint8_t>(min);
}

bool RelaxationPolicy::ConditionallyExempt(Sys nr) const {
  if (ForcedCpCall(nr)) {
    return false;
  }
  ConditionalRule rule = ConditionalFor(nr);
  if (!rule.conditional) {
    return false;
  }
  // Conditionally exempt if at least the non-socket threshold is reached.
  return static_cast<uint8_t>(level_) >= static_cast<uint8_t>(rule.nonsocket_level);
}

bool RelaxationPolicy::AllowsUnmonitored(Sys nr, FdType fd_type) const {
  if (ForcedCpCall(nr)) {
    return false;
  }
  if (UnconditionallyExempt(nr)) {
    return true;
  }
  ConditionalRule rule = ConditionalFor(nr);
  if (!rule.conditional) {
    return false;
  }
  // Special files (/proc/<pid>/maps snapshots and friends) are always forwarded to
  // GHUMVEE so it can filter their content (paper §3.1 / §3.6).
  if (fd_type == FdType::kSpecial) {
    return false;
  }
  PolicyLevel needed =
      fd_type == FdType::kSocket ? rule.socket_level : rule.nonsocket_level;
  if (needed == PolicyLevel::kNoIpmon) {
    return false;
  }
  return static_cast<uint8_t>(level_) >= static_cast<uint8_t>(needed);
}

std::vector<bool> RelaxationPolicy::RegistrationMask() const {
  std::vector<bool> mask(kNumSyscalls, false);
  for (uint32_t i = 1; i < kNumSyscalls; ++i) {
    Sys nr = static_cast<Sys>(i);
    if (!IpmonSupports(nr)) {
      continue;
    }
    mask[i] = UnconditionallyExempt(nr) || ConditionallyExempt(nr);
  }
  return mask;
}

bool RelaxationPolicy::IpmonSupports(Sys nr) {
  // The fast path: everything Table 1 mentions (67 calls in the paper's prototype).
  return UnconditionalLevel(nr) != PolicyLevel::kNoIpmon || ConditionalFor(nr).conditional;
}

bool RelaxationPolicy::IsLocalCall(Sys nr) { return DescOf(nr).local; }

// Calls that could tamper with IP-MON's mappings or the RB.
bool RelaxationPolicy::ForcedCpCall(Sys nr) { return DescOf(nr).forced_cp; }

}  // namespace remon

// Wake-callback queues.
//
// Blocking semantics in the simulated kernel are callback-based: a thread that must
// sleep registers a one-shot waiter on the object's WaitQueue; the object calls
// Wake() when its state changes (data arrived, space freed, peer closed). Persistent
// observers serve epoll-style edge notification fan-out.

#ifndef SRC_VFS_WAIT_QUEUE_H_
#define SRC_VFS_WAIT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace remon {

class WaitQueue {
 public:
  using Callback = std::function<void()>;

  WaitQueue() = default;
  WaitQueue(const WaitQueue&) = delete;
  WaitQueue& operator=(const WaitQueue&) = delete;

  // One-shot: removed before its callback runs.
  uint64_t AddWaiter(Callback cb) {
    uint64_t id = next_id_++;
    waiters_.emplace_back(id, std::move(cb));
    return id;
  }

  // Persistent: notified on every Wake until removed.
  uint64_t AddObserver(Callback cb) {
    uint64_t id = next_id_++;
    observers_.emplace_back(id, std::move(cb));
    return id;
  }

  void Remove(uint64_t id) {
    auto drop = [id](auto& vec) {
      for (size_t i = 0; i < vec.size(); ++i) {
        if (vec[i].first == id) {
          vec.erase(vec.begin() + static_cast<long>(i));
          return;
        }
      }
    };
    drop(waiters_);
    drop(observers_);
  }

  // Wakes all one-shot waiters (removing them first) and notifies all observers.
  void Wake() {
    if (!waiters_.empty()) {
      if (wake_depth_ == 0) {
        // Ping-pong with the scratch buffer so neither vector's capacity is lost
        // to a swap-with-empty (the hot Wake path stays allocation-free).
        ++wake_depth_;
        scratch_.swap(waiters_);
        for (auto& [id, cb] : scratch_) {
          cb();
        }
        scratch_.clear();
        --wake_depth_;
      } else {
        // Reentrant wake (a waiter re-armed and re-woke this queue): scratch is in
        // use above us, fall back to a local drain.
        std::vector<std::pair<uint64_t, Callback>> to_run;
        to_run.swap(waiters_);
        for (auto& [id, cb] : to_run) {
          cb();
        }
      }
    }
    if (!observers_.empty()) {
      // Observers may unsubscribe during notification; iterate over a snapshot
      // (cold: only epoll-style registrations populate observers_).
      std::vector<std::pair<uint64_t, Callback>> snapshot = observers_;
      for (auto& [id, cb] : snapshot) {
        bool still_registered = false;
        for (const auto& [oid, ocb] : observers_) {
          if (oid == id) {
            still_registered = true;
            break;
          }
        }
        if (still_registered) {
          cb();
        }
      }
    }
  }

  // Wakes at most `n` one-shot waiters in FIFO order (observers are not notified).
  // Returns the number woken.
  int WakeN(int n) {
    int woken = 0;
    while (woken < n && !waiters_.empty()) {
      auto [id, cb] = std::move(waiters_.front());
      waiters_.erase(waiters_.begin());
      cb();
      ++woken;
    }
    return woken;
  }

  bool has_waiters() const { return !waiters_.empty(); }
  size_t waiter_count() const { return waiters_.size(); }

 private:
  uint64_t next_id_ = 1;
  std::vector<std::pair<uint64_t, Callback>> waiters_;
  std::vector<std::pair<uint64_t, Callback>> observers_;
  // Wake() drain buffer, ping-ponged with waiters_ to preserve both capacities.
  std::vector<std::pair<uint64_t, Callback>> scratch_;
  int wake_depth_ = 0;
};

}  // namespace remon

#endif  // SRC_VFS_WAIT_QUEUE_H_

// System call numbers of the simulated kernel.
//
// The set mirrors the x86-64 Linux calls that ReMon's paper discusses: the 67-call
// IP-MON fast path of Table 1, the always-monitored resource-management calls, and
// the handful of extras the workloads need. Numbering is dense and private to the
// simulator (the monitors only care about identity, not numeric equality with Linux).

#ifndef SRC_KERNEL_SYSNO_H_
#define SRC_KERNEL_SYSNO_H_

#include <cstdint>
#include <string_view>

namespace remon {

enum class Sys : uint32_t {
  kInvalid = 0,

  // --- Process-local queries (Table 1 BASE_LEVEL unconditional) -----------------
  kGettimeofday,
  kClockGettime,
  kTime,
  kGetpid,
  kGettid,
  kGetpgrp,
  kGetppid,
  kGetgid,
  kGetegid,
  kGetuid,
  kGeteuid,
  kGetcwd,
  kGetpriority,
  kGetrusage,
  kTimes,
  kCapget,
  kGetitimer,
  kSysinfo,
  kUname,
  kSchedYield,
  kNanosleep,

  // --- Read-only FS metadata (NONSOCKET_RO_LEVEL unconditional) ---------------
  kAccess,
  kFaccessat,
  kLseek,
  kStat,
  kLstat,
  kFstat,
  kFstatat,
  kGetdents,
  kReadlink,
  kReadlinkat,
  kGetxattr,
  kLgetxattr,
  kFgetxattr,
  kAlarm,
  kSetitimer,
  kTimerfdGettime,
  kMadvise,
  kFadvise64,

  // --- Reads (conditional: non-socket at NONSOCKET_RO, socket at SOCKET_RO) ----
  kRead,
  kReadv,
  kPread64,
  kPreadv,
  kSelect,
  kPoll,

  // --- Conditional at NONSOCKET_RO (process-local writes) ------------------------
  kFutex,
  kIoctl,
  kFcntl,

  // --- Write-ish FS calls (NONSOCKET_RW unconditional) -----------------------
  kSync,
  kSyncfs,
  kFsync,
  kFdatasync,
  kTimerfdSettime,

  // --- Writes (conditional: non-socket at NONSOCKET_RW, socket at SOCKET_RW) ---
  kWrite,
  kWritev,
  kPwrite64,
  kPwritev,

  // --- Socket reads (SOCKET_RO unconditional) --------------------------------
  kEpollWait,
  kRecvfrom,
  kRecvmsg,
  kRecvmmsg,
  kGetsockname,
  kGetpeername,
  kGetsockopt,

  // --- Socket writes (SOCKET_RW unconditional) -------------------------------
  kSendto,
  kSendmsg,
  kSendmmsg,
  kSendfile,
  kEpollCtl,
  kSetsockopt,
  kShutdown,

  // --- Always monitored: file descriptor lifecycle ------------------------------
  kOpen,
  kOpenat,
  kClose,
  kDup,
  kDup2,
  kPipe,
  kPipe2,
  kSocket,
  kBind,
  kListen,
  kAccept,
  kAccept4,
  kConnect,
  kEpollCreate,
  kEpollCreate1,
  kTimerfdCreate,
  kEventfd,
  kEventfd2,

  // --- Always monitored: memory management -----------------------------------
  kMmap,
  kMunmap,
  kMprotect,
  kMremap,
  kBrk,
  kShmget,
  kShmat,
  kShmdt,
  kShmctl,

  // --- Always monitored: process/thread lifecycle -----------------------------
  kClone,
  kFork,
  kExecve,
  kExit,
  kExitGroup,
  kWait4,
  kKill,
  kTgkill,
  kSetpriority,

  // --- Always monitored: signal handling --------------------------------------
  kRtSigaction,
  kRtSigprocmask,
  kRtSigreturn,
  kSigaltstack,
  kPause,

  // --- Always monitored: misc sensitive ----------------------------------------
  kGetrandom,
  kUnlink,
  kMkdir,
  kRmdir,
  kRename,
  kTruncate,
  kFtruncate,
  kChdir,
  kSetxattr,

  // --- MVEE-internal ------------------------------------------------------------
  // IP-MON registration (the new system call the paper adds to the kernel, §3.5).
  kRemonIpmonRegister,
  // IP-MON -> GHUMVEE RB-overflow / signal-check flush request (§3.2).
  kRemonRbFlush,
  // Record/replay agent registration for user-space sync replication (§2.3).
  kRemonSyncRegister,

  kMaxSyscall,  // Sentinel; keep last.
};

inline constexpr uint32_t kNumSyscalls = static_cast<uint32_t>(Sys::kMaxSyscall);

std::string_view SysName(Sys no);

}  // namespace remon

#endif  // SRC_KERNEL_SYSNO_H_

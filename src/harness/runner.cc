#include "src/harness/runner.h"

#include <cmath>
#include <map>
#include <string>

#include "src/kernel/kernel.h"
#include "src/mem/shm.h"
#include "src/sim/check.h"
#include "src/vfs/fs.h"

namespace remon {

namespace {

// One hermetic simulated world.
struct World {
  explicit World(const RunConfig& config)
      : sim(config.seed, config.costs), net(&sim), kernel(&sim, &fs, &net, &shm) {
    server_machine = net.AddMachine("server");
    client_machine = net.AddMachine("client");
  }
  Simulator sim;
  Filesystem fs;
  Network net;
  ShmRegistry shm;
  Kernel kernel;
  uint32_t server_machine;
  uint32_t client_machine;
};

RemonOptions OptionsFor(const RunConfig& config, double mem_intensity,
                        bool multithreaded) {
  RemonOptions opts;
  opts.mode = config.mode;
  opts.replicas = config.replicas;
  opts.level = config.level;
  opts.temporal = config.temporal;
  opts.rb_size = config.rb_size;
  opts.wait_mode = config.wait_mode;
  opts.rb_batch_max = config.rb_batch_max;
  opts.rb_batch_policy = config.rb_batch_policy;
  opts.mem_intensity = mem_intensity;
  // Suite workloads are race-free by construction; multi-threaded servers opt in
  // (their pool workers then serialize racy accept-side bookkeeping through the
  // agent). Single-threaded programs never consult the agent.
  opts.use_sync_agent = config.use_sync_agent && multithreaded;
  opts.sync_log_size = config.sync_log_size;
  opts.rb_max_inflight_frames = config.rb_max_inflight_frames;
  opts.respawn_dead_replicas = config.respawn_dead_replicas;
  opts.rb_auth = config.rb_auth;
  return opts;
}

// Fault injection: schedules the remote-replica kill configured in `config` (the
// highest-index replica with a remote sync agent loses its link at the given
// virtual time). With respawn_dead_replicas set, the run then exercises the
// checkpoint/re-seed recovery path end to end.
void ArmRemoteKill(World* w, const RunConfig& config, Remon* mvee) {
  if (config.kill_remote_replica_at <= 0) {
    return;
  }
  w->sim.queue().ScheduleAt(config.kill_remote_replica_at, [mvee, replicas =
                                                                     config.replicas] {
    for (int i = replicas - 1; i >= 1; --i) {
      RemoteSyncAgent* agent = mvee->remote_agent(i);
      if (agent != nullptr) {
        agent->Shutdown();
        return;
      }
    }
  });
}

// Materializes the RunConfig placement spec: adds one machine per distinct
// replica-host index, links each to the leader with the configured RB link
// parameters, and fills RemonOptions::replica_machines. Native runs (and empty
// placements) stay all-local.
void ApplyPlacement(World* w, const RunConfig& config, RemonOptions* opts) {
  opts->machine = w->server_machine;
  if (config.placement.empty() || config.mode != MveeMode::kRemon) {
    return;
  }
  std::map<int, uint32_t> hosts;
  opts->replica_machines.assign(static_cast<size_t>(config.replicas),
                                opts->machine);
  for (size_t k = 0; k < config.placement.size(); ++k) {
    if (static_cast<int>(k) + 1 >= config.replicas) {
      break;  // Placement entries beyond the replica set are ignored.
    }
    int host = config.placement[k];
    if (host <= 0) {
      continue;  // 0 = leader-local.
    }
    auto [it, inserted] = hosts.try_emplace(host, 0);
    if (inserted) {
      it->second = w->net.AddMachine("replica-host-" + std::to_string(host));
      w->net.SetLink(opts->machine, it->second,
                     LinkParams{config.rb_link_latency, config.rb_link_bytes_per_ns});
    }
    opts->replica_machines[k + 1] = it->second;
  }
}

}  // namespace

SuiteResult RunSuiteWorkload(const WorkloadSpec& spec, const RunConfig& config) {
  World w(config);
  RemonOptions opts = OptionsFor(config, spec.mem_intensity, spec.threads > 1);
  ApplyPlacement(&w, config, &opts);
  Remon mvee(&w.kernel, opts);
  mvee.Launch(SuiteProgram(spec), spec.name);
  ArmRemoteKill(&w, config, &mvee);
  w.sim.Run();
  SuiteResult result;
  result.name = spec.name;
  result.seconds = static_cast<double>(w.sim.now()) / 1e9;
  result.diverged = mvee.divergence_detected();
  result.finished = mvee.finished();
  result.stats = w.sim.stats();
  return result;
}

double NormalizedSuiteTime(const WorkloadSpec& spec, const RunConfig& config) {
  RunConfig native = config;
  native.mode = MveeMode::kNative;
  SuiteResult base = RunSuiteWorkload(spec, native);
  SuiteResult run = RunSuiteWorkload(spec, config);
  REMON_CHECK_MSG(base.finished && !base.diverged, "native suite run failed");
  if (!run.finished || run.diverged || base.seconds <= 0) {
    return -1.0;  // Signals a failed configuration in reports.
  }
  return run.seconds / base.seconds;
}

ServerResult RunServerBench(const ServerSpec& server, const ClientSpec& client_spec,
                            const RunConfig& config, LinkParams link) {
  World w(config);
  w.net.SetLink(w.server_machine, w.client_machine, link);

  RemonOptions opts = OptionsFor(config, server.mem_intensity, server.workers > 1);
  ApplyPlacement(&w, config, &opts);
  Remon mvee(&w.kernel, opts);
  mvee.Launch(ServerProgram(server), server.name);
  ArmRemoteKill(&w, config, &mvee);

  // The client rides on a separate, unmonitored machine.
  ClientSpec cs = client_spec;
  cs.server_machine = w.server_machine;
  cs.port = server.port;
  cs.request_bytes = cs.request_bytes != 0 ? cs.request_bytes : server.default_response;
  ClientStats stats;
  LayoutPlanner planner(&w.sim.rng());
  Process* client_proc =
      w.kernel.CreateProcess("client", w.client_machine, planner.PlanFor(8));
  // Give the servers a small head start to reach their accept loops.
  w.kernel.SpawnThread(client_proc, [&cs, &stats](Guest& g) -> GuestTask<void> {
    co_await g.SleepNs(Millis(2));
    ProgramFn body = ClientProgram(cs, &stats);
    co_await body(g);
  });

  w.sim.Run();

  ServerResult result;
  result.name = server.name;
  result.seconds = stats.Seconds();
  result.requests = stats.completed;
  result.bytes_received = stats.bytes_received;
  result.throughput = stats.Throughput();
  result.mean_latency_us = static_cast<double>(stats.MeanLatency()) / 1e3;
  result.diverged = mvee.divergence_detected();
  result.stats = w.sim.stats();
  return result;
}

double NormalizedServerTime(const ServerSpec& server, const ClientSpec& client,
                            const RunConfig& config, LinkParams link) {
  RunConfig native = config;
  native.mode = MveeMode::kNative;
  ServerResult base = RunServerBench(server, client, native, link);
  ServerResult run = RunServerBench(server, client, config, link);
  if (base.seconds <= 0 || run.seconds <= 0 || run.diverged) {
    return -1.0;
  }
  return run.seconds / base.seconds;
}

}  // namespace remon

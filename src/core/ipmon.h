// IP-MON: the in-process monitor (paper §3.2-§3.9).
//
// One IpMon instance lives in each replica (the paper loads it as a shared library;
// here it is a host-side component whose code runs on the replica's virtual
// timeline and whose data lives in the replica's simulated memory). It replicates
// the results of unmonitored system calls from the master to the slaves through the
// shared replication buffer without any context switch:
//
//   master:  MAYBE_CHECKED -> CALCSIZE -> PRECALL (log args) -> execute (token-
//            authorized restart through IK-B) -> POSTCALL (log results, wake slaves)
//   slaves:  wait for the entry -> compare own args against the master's (divergence
//            check) -> abort own call -> wait for results (spin or per-invocation
//            futex condvar, predicted via the file map) -> copy results out
//
// Calls the policy conditionally rejects, calls that do not fit the RB, and calls
// made while GHUMVEE has signals pending are forwarded to GHUMVEE by destroying the
// authorization token and restarting (fig. 2, 4'); a forwarded stub entry keeps the
// slaves in sync.

#ifndef SRC_CORE_IPMON_H_
#define SRC_CORE_IPMON_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/core/epoll_shadow.h"
#include "src/core/file_map.h"
#include "src/core/policy.h"
#include "src/core/replication_buffer.h"
#include "src/kernel/guest.h"
#include "src/kernel/kernel.h"
#include "src/kernel/syscall_meta.h"

namespace remon {

class IkBroker;
class RbTransport;

// Monitor flavor: ReMon's IP-MON (split-monitor, GHUMVEE fallback) or a VARAN-like
// reliability-oriented monitor (everything in-process, no lockstep, no CP fallback).
enum class IpmonMode { kRemon, kVaranLike };

// How slaves wait for the master's results: the paper's design predicts blocking via
// the file map and picks per call (kAuto); kSpin / kFutex force one strategy for the
// ablation study (§3.7).
enum class IpmonWaitMode { kAuto, kSpin, kFutex };

class IpMon {
 public:
  struct Config {
    int replica_index = 0;
    int num_replicas = 2;
    uint64_t rb_size = 16 * 1024 * 1024;
    int max_ranks = 16;
    IpmonMode mode = IpmonMode::kRemon;
    IpmonWaitMode wait_mode = IpmonWaitMode::kAuto;
    uint64_t entry_cookie = 0x49504d4f;  // "IPMO": the registered entry point.
    // Batched RB publication (ablation knob): the master coalesces up to this many
    // consecutive small bounded-latency entries per rank — staged PRECALL argument
    // commits and deferred POSTCALL results — into one publication with a single
    // slave wakeup; the batch always flushes before a call that can park the master
    // indefinitely (sockets, pipes, sleeps) and before leaving the fast path.
    // 0 disables batching (per-entry wakes). Under kAdaptive this is the window
    // ceiling; the effective window floats in [1, rb_batch_max] driven by the
    // waiter pressure observed at flush points.
    int rb_batch_max = 0;
    RbBatchPolicy rb_batch_policy = RbBatchPolicy::kFixed;
    // Only results at most this large are batched; bigger payloads publish eagerly.
    uint64_t rb_batch_entry_bytes = 512;
  };

  IpMon(Kernel* kernel, IkBroker* broker, RelaxationPolicy policy, FileMap* file_map,
        Config config);

  bool is_master() const { return config_.replica_index == 0; }
  const Config& config() const { return config_; }
  const RbView& rb() const { return rb_; }
  Process* process() const { return process_; }

  // Fellow replicas' IP-MON instances, in replica order (set by the front end; used
  // to locate the master's RB view for cross-replica waits).
  void set_peers(std::vector<IpMon*> peers) { peers_ = std::move(peers); }

  // --- Cross-machine replica sets (src/core/rb_transport.h) ---------------------

  // Master only: every publication is additionally serialized into one wire frame
  // and pumped to the remote replicas' sync agents ("one flush = one frame").
  void set_transport(RbTransport* transport) { transport_ = transport; }

  // Remote slaves: this replica's RB is a machine-local mirror fed by its
  // RemoteSyncAgent rather than leader-shared frames; on RB resets the replica
  // zeroes its own mirror (there is no master with shared frames to do it).
  void set_rb_private_mirror(bool mirror) { rb_private_mirror_ = mirror; }

  // Invoked at the end of Initialize, once the RB view is valid (the remote sync
  // agent drains frames that raced ahead of the replica's prologue).
  void set_on_initialized(std::function<void()> cb) { on_initialized_ = std::move(cb); }

  // Master of a cross-machine multi-threaded set: publishes the sync agent's
  // pending log-stream records (SyncAgent::FlushLogStream). Invoked at the same
  // liveness points that publish deferred RB batches — FlushRbBatches and the
  // kernel park hook — so a parked or dying master thread can never strand a
  // remote slave on an unstreamed sync op. Wire before Initialize runs.
  void set_sync_log_flush(std::function<void()> cb) { sync_log_flush_ = std::move(cb); }

  // Coalescing window the sync-log stream borrows from this monitor's batching
  // config: the rank's adaptive/fixed batch window, floored at 1 (batching
  // disabled streams every append eagerly).
  int SyncCoalesceWindow(int rank) const {
    int w = config_.rb_batch_max > 0 ? BatchWindow(rank) : 1;
    return w > 1 ? w : 1;
  }

  // One observed transport stall for `rank`: under the adaptive policy the rank's
  // batch window grows (AIMD) so a slow link amortizes into larger frames. Fed by
  // this monitor's own flush-point stalls and by the sync agent's append-time
  // backpressure gate.
  void ObserveTransportBackpressure(int rank);

  // Guest-side initialization prologue: creates/attaches the RB segment (System V
  // IPC, arbitrated by GHUMVEE), maps the file map read-only, and registers with the
  // kernel via the dedicated system call (paper §3.5).
  GuestTask<void> Initialize(Guest& g);

  // The system call entry point IK-B forwards to (paper fig. 2, step 2).
  GuestTask<void> HandleCall(Thread* t, SyscallRequest req, uint64_t token,
                             bool temporal_exempt);

  // --- GHUMVEE callbacks -------------------------------------------------------

  // Resets rank r's sub-buffer after an overflow flush (only the master's IpMon
  // zeroes the shared bytes; every replica resets its own cursor).
  void OnRbReset(int rank);

  // GHUMVEE feeds IP-MON the epoll registrations it observes on monitored epoll_ctl
  // calls, so epoll_wait results can be translated even when the policy level
  // monitors epoll_ctl but exempts epoll_wait (e.g. SOCKET_RO).
  void RecordEpollShadowDirect(int epfd, int op, int fd, uint64_t data);

  // The paper's §4 extension: IK-B periodically moves the RB to a fresh virtual
  // address by remapping the replica's page-table entries, shrinking the window for
  // address-guessing attacks. Invoked by GHUMVEE at flush points while the replica
  // is fully stopped. Returns the new base (0 if migration was not possible).
  GuestAddr MigrateRb();
  uint64_t rb_migrations() const { return rb_migrations_; }

  // Live FileMap growth (FileMap::Grow): remaps the grown map into this replica
  // at a fresh range with the same page-table epoch-bump idiom MigrateRb uses, so
  // every page of the new geometry is reachable read-only. Returns false before
  // Initialize (the initial mapping then covers the grown geometry already) or
  // when no free range fits.
  bool RemapFileMap();

  // Shadow-map lookups for GHUMVEE: when an occasionally-forwarded epoll_wait is
  // replicated by the CP monitor, the authoritative mapping may live in IP-MON.
  bool LookupEpollFd(int epfd, uint64_t data, int* fd_out) const;
  bool LookupEpollData(int epfd, int fd, uint64_t* data_out) const;

  // Number of RB resets this replica has observed.
  uint64_t rb_resets() const { return rb_resets_; }
  // This replica's RB cursor for `rank` (diagnostics/tests): the offset of the
  // next entry it will produce (master) or consume (slave).
  uint64_t rb_cursor(int rank) const {
    return static_cast<size_t>(rank) < cursor_.size()
               ? cursor_[static_cast<size_t>(rank)]
               : 0;
  }
  // This replica's next entry sequence number for `rank` (checkpointing).
  uint64_t rb_seq(int rank) const {
    return static_cast<size_t>(rank) < seq_.size() ? seq_[static_cast<size_t>(rank)] : 0;
  }
  // Replica-checkpoint inputs (src/core/snapshot.h): the file map this monitor
  // consults and its epoll data shadow.
  const FileMap* file_map() const { return file_map_; }
  const EpollShadowMap& epoll_shadow() const { return epoll_shadow_; }
  uint64_t mismatches_tolerated() const { return mismatches_tolerated_; }

  // Publishes every deferred batched POSTCALL commit (all ranks) and wakes the
  // slaves; returns the total waiters observed (for the caller's FUTEX_WAKE cost
  // accounting). GHUMVEE invokes this when the master enters a monitored call, so
  // slaves can never be left spinning on deferred results while it sits in lockstep.
  uint32_t FlushRbBatches();

 private:
  // Decides whether the active policy requires CP monitoring for this call
  // (MAYBE_CHECKED). Consults the file map (via the descriptor registry's
  // EffectiveFdType) for FD-dependent decisions.
  bool NeedsGhumvee(Thread* t, const SyscallRequest& req) const;

  // Flushes one rank's pending batch; returns the waiters observed (for the
  // caller's futex-wake cost accounting). Under RbBatchPolicy::kAdaptive the
  // observation — futex waiters registered on the covered entries vs. tasks
  // parked spinning on their state words — also drives the window state machine.
  uint32_t FlushRbBatch(int rank);

  // Effective batch window for a rank: rb_batch_max under kFixed, the rank's
  // current adaptive window under kAdaptive.
  int BatchWindow(int rank) const;

  // Whether the call can park the master for an unbounded time (external input or
  // an explicit sleep). Bounded-latency regular-file I/O returns false even when
  // the blocking prediction says "blocks": deferring results across it delays the
  // slaves only by the bounded device latency — the batching trade-off, not a
  // liveness hazard.
  bool MaySleepIndefinitely(const SyscallRequest& req) const;

  // Flushes one rank's batch and charges the thread the FUTEX_WAKE cost when the
  // publication woke someone — the one idiom every coroutine flush point must use
  // so the fixed-vs-adaptive ablation columns stay comparable.
  GuestTask<void> FlushBatchCharged(Thread* t, int rank);

  // Master + transport: parks the thread while any remote link has its full
  // in-flight frame budget outstanding (slow-link backpressure stalls the leader's
  // flush point instead of queuing unboundedly); each stall feeds the adaptive
  // window's AIMD as grow pressure. No-op without a transport.
  GuestTask<void> StallOnTransport(Thread* t, int rank);

  // Master + transport: serializes freshly published entries (entry_off,
  // final-state pairs) into one frame broadcast to every remote agent.
  void EmitToTransport(int rank, const std::vector<std::pair<uint64_t, uint32_t>>& pubs);
  GuestTask<void> MasterPath(Thread* t, SyscallRequest req, uint64_t token);
  GuestTask<void> SlavePath(Thread* t, SyscallRequest req, uint64_t token);
  // Forward the call to GHUMVEE (4'): destroy token, restart traced.
  GuestTask<void> ForwardToGhumvee(Thread* t, SyscallRequest req);

  // VARAN-like mode: everything replicates in-process, loosely synchronized, no CP
  // fallback, overflow handled by a replica barrier instead of a GHUMVEE reset.
  GuestTask<void> VaranPath(Thread* t, SyscallRequest req);
  GuestTask<void> VaranFlushBarrier(Thread* t, int rank);
  WaitQueue* RankHeaderQueue(int rank);

  // Builds the result payload from this (master) replica's memory after execution:
  // concatenated out-regions, with epoll_event.data values translated to FDs through
  // the shadow mapping (paper §3.9).
  std::vector<uint8_t> BuildResultPayload(Thread* t, const SyscallRequest& req, int64_t ret);
  // Applies a payload to this (slave) replica's memory, translating FDs back to this
  // replica's epoll data values.
  void ApplyResultPayload(Thread* t, const SyscallRequest& req, int64_t ret,
                          const std::vector<uint8_t>& payload);

  // Records the (epfd, fd) -> data association from this replica's own epoll_ctl
  // arguments (both master and slaves record before the call is aborted in slaves).
  void RecordEpollShadow(Thread* t, const SyscallRequest& req);

  // Raises the intentional crash that signals GHUMVEE about an argument mismatch.
  void IntentionalCrash(Thread* t, const SyscallRequest& req, uint64_t seq);

  // The futex wait queue for the entry's state word.
  WaitQueue* StateWordQueue(uint64_t entry_off);

  Kernel* kernel_;
  IkBroker* broker_;
  RelaxationPolicy policy_;
  FileMap* file_map_;
  Config config_;
  Process* process_ = nullptr;
  RbView rb_;
  // Where (and how much of) the file map is mapped in this replica; RemapFileMap
  // moves it when the map grows live.
  GuestAddr fm_addr_ = 0;
  uint64_t fm_mapped_bytes_ = 0;
  std::vector<IpMon*> peers_;
  RbTransport* transport_ = nullptr;  // Master of a cross-machine set; not owned.
  bool rb_private_mirror_ = false;    // Remote slave: RB is a machine-local mirror.
  std::function<void()> on_initialized_;
  std::function<void()> sync_log_flush_;  // See set_sync_log_flush.

  // Per-rank cursors/sequence numbers: this replica's private positions ("each
  // replica thread only reads and writes its own RB position", §3.2). The master's
  // IP-MON additionally owns the write cursor; they advance identically because
  // every replica computes the same entry sizes.
  std::vector<uint64_t> cursor_;
  std::vector<uint64_t> seq_;

  // epoll shadow mapping (§3.9): (epfd, fd) <-> this replica's data values, for
  // translating epoll_wait results between replicas.
  EpollShadowMap epoll_shadow_;

  // Per-rank deferred POSTCALL commits (master only; see Config::rb_batch_max).
  std::vector<RbBatch> batch_;
  // Liveness sentinel for the on_park hook (see Initialize): expires with this
  // IpMon, making the Process-held hook a safe no-op afterwards.
  std::shared_ptr<char> park_guard_ = std::make_shared<char>(0);

  const char* forward_reason_ = "?";
  uint64_t rb_resets_ = 0;
  uint64_t rb_migrations_ = 0;
  uint64_t mismatches_tolerated_ = 0;  // VARAN-like mode tolerates small mismatches.
  std::vector<uint64_t> varan_flush_gen_;  // Per-rank flush-barrier generation.
};

}  // namespace remon

#endif  // SRC_CORE_IPMON_H_

#include "src/core/rb_transport.h"

#include <algorithm>
#include <cstdio>
#include <string>

#include "src/core/ipmon.h"
#include "src/core/snapshot.h"
#include "src/core/sync_agent.h"
#include "src/kernel/kernel.h"
#include "src/sim/check.h"

namespace remon {

namespace {

// Per-read chunk while draining a socket's receive buffer.
constexpr size_t kReadChunk = 4096;

// Writes as much of `q` (with partial-write offset `*head_off`) into `sock` as the
// flow-control window accepts. Returns false on a hard write error (peer gone).
bool DrainSendQueue(StreamSocket* sock, std::deque<std::vector<uint8_t>>* q,
                    size_t* head_off) {
  while (!q->empty()) {
    std::vector<uint8_t>& front = q->front();
    int64_t n = sock->Write(front.data() + *head_off, front.size() - *head_off, 0);
    if (n == -kEAGAIN) {
      return true;  // Window full; retry on the next poll wake.
    }
    if (n <= 0) {
      return false;
    }
    *head_off += static_cast<size_t>(n);
    if (*head_off == front.size()) {
      q->pop_front();
      *head_off = 0;
    }
  }
  return true;
}

}  // namespace

// --- RbTransport (leader side) ----------------------------------------------------

RbTransport::RbTransport(Kernel* kernel, uint32_t leader_machine, Options options)
    : kernel_(kernel), leader_machine_(leader_machine), options_(options) {
  REMON_CHECK(options_.max_inflight_frames >= 1);
}

RbTransport::~RbTransport() {
  for (auto& r : remotes_) {
    DisarmConnectTimer(*r);
    if (r->sock && r->observer_id != 0) {
      r->sock->poll_queue().Remove(r->observer_id);
    }
  }
}

void RbTransport::AddRemote(int replica_index, uint32_t machine, uint16_t port) {
  auto remote = std::make_unique<Remote>();
  remote->replica_index = replica_index;
  remote->machine = machine;
  remote->sock = kernel_->net()->CreateStream(leader_machine_);
  remote->sock->ConnectTo(SockAddr{machine, port});
  // Plain-CRC streams need no handshake; authenticated streams hold all data
  // until the peer's join attestation verifies.
  remote->attested = options_.auth == nullptr;
  if (options_.auth != nullptr) {
    remote->parser.set_auth(options_.auth, RbAuthDirection::kReplicaToLeader);
  }
  // A first-generation remote starts from the set's shared initial state — an
  // all-zero mirror at reset generation 0 — so its delta basis is valid from the
  // first ack (empty offsets degrade each rank to its data start).
  remote->basis.valid = true;
  Remote* r = remote.get();
  remote->observer_id = remote->sock->poll_queue().AddObserver([this, r] { Pump(*r); });
  ArmConnectTimer(*r);
  remotes_.push_back(std::move(remote));
}

RbTransport::Remote* RbTransport::ReviveSlot(int replica_index, uint32_t machine,
                                             uint16_t port) {
  Remote* slot = nullptr;
  for (auto& r : remotes_) {
    if (r->replica_index == replica_index) {
      slot = r.get();
      break;
    }
  }
  REMON_CHECK_MSG(slot != nullptr, "AddReplacement: replica was never remote");
  REMON_CHECK_MSG(slot->dead, "AddReplacement: replica link is still live");

  // Fresh connection, fresh per-connection sequence space. The old socket's
  // observer must go first: a zombie callback on a torn socket could otherwise
  // pump the revived slot's state. The latched sync_cursor survives on purpose:
  // until the replacement attests or acks a newer cursor, the dead replica's
  // last acknowledged position still gates sync-log overwrites.
  DisarmConnectTimer(*slot);
  if (slot->sock != nullptr && slot->observer_id != 0) {
    slot->sock->poll_queue().Remove(slot->observer_id);
  }
  slot->sock = kernel_->net()->CreateStream(leader_machine_);
  slot->sock->ConnectTo(SockAddr{machine, port});
  slot->machine = machine;
  slot->sendq.clear();
  slot->sendq_head_off = 0;
  slot->frames_sent = 0;
  slot->frames_acked = 0;
  slot->unacked.clear();
  slot->snapshot_last_seq = 0;
  slot->parser = RbFrameParser{};
  if (options_.auth != nullptr) {
    slot->parser.set_auth(options_.auth, RbAuthDirection::kReplicaToLeader);
  }
  slot->dead = false;
  slot->attested = options_.auth == nullptr;
  slot->awaiting_snapshot = false;
  slot->max_peer_epoch = 0;
  Remote* r = slot;
  slot->observer_id = slot->sock->poll_queue().AddObserver([this, r] { Pump(*r); });
  ArmConnectTimer(*slot);
  return slot;
}

void RbTransport::EnqueueSnapshotFrames(Remote& r, const SnapshotPayloads& snapshot) {
  // The checkpoint leads the stream: every data frame published from here on
  // queues behind it, so the mirror the replacement reconstructs is the leader's
  // RB at the capture point plus, in order, everything after it. Snapshot frames
  // take normal sequence numbers — the in-flight bound and cumulative acks
  // throttle checkpoint transfer exactly like entry traffic.
  SimStats& stats = kernel_->stats();
  auto enqueue = [&](RbFrameType type, const std::vector<uint8_t>& payload) {
    uint64_t seq = ++r.frames_sent;
    std::vector<uint8_t> frame = RbWireCodec::EncodeSnapshotFrame(
        type, epoch_, static_cast<uint32_t>(r.replica_index), seq, payload);
    Seal(&frame);
    ++stats.rb_frames_sent;
    ++stats.rb_snapshot_frames_sent;
    stats.rb_frame_bytes_sent += frame.size();
    stats.rb_snapshot_bytes_sent += frame.size();
    if (snapshot.delta) {
      stats.rb_snapshot_delta_bytes_sent += frame.size();
    }
    RbEpochStats& row = stats.EpochRow(epoch_);
    ++row.frames_sent;
    ++row.snapshot_frames;
    r.sendq.push_back(std::move(frame));
  };
  enqueue(snapshot.delta ? RbFrameType::kSnapshotDelta : RbFrameType::kSnapshotBegin,
          snapshot.begin);
  for (const std::vector<uint8_t>& chunk : snapshot.chunks) {
    enqueue(RbFrameType::kSnapshotChunk, chunk);
  }
  enqueue(RbFrameType::kSnapshotEnd, snapshot.end);
  r.snapshot_last_seq = r.frames_sent;
}

bool RbTransport::SnapshotInflight() const {
  for (const auto& r : remotes_) {
    if (!r->dead && r->frames_acked < r->snapshot_last_seq) {
      return true;
    }
  }
  return false;
}

void RbTransport::AddReplacement(int replica_index, uint32_t machine, uint16_t port,
                                 const SnapshotPayloads& snapshot) {
  Remote* slot = ReviveSlot(replica_index, machine, port);
  EnqueueSnapshotFrames(*slot, snapshot);
  ++kernel_->stats().rb_replica_respawns;
  Pump(*slot);
}

void RbTransport::AddReplacementAwaitingAttest(int replica_index, uint32_t machine,
                                               uint16_t port) {
  REMON_CHECK_MSG(options_.auth != nullptr,
                  "AddReplacementAwaitingAttest needs an authenticated transport");
  Remote* slot = ReviveSlot(replica_index, machine, port);
  slot->awaiting_snapshot = true;
  ++kernel_->stats().rb_replica_respawns;
  Pump(*slot);
}

void RbTransport::EnqueueSnapshot(int replica_index, const SnapshotPayloads& snapshot) {
  for (auto& r : remotes_) {
    if (r->replica_index != replica_index) {
      continue;
    }
    if (r->dead || !r->attested || !r->awaiting_snapshot) {
      return;  // The link died (or re-attested) between attest and checkpoint.
    }
    r->awaiting_snapshot = false;
    EnqueueSnapshotFrames(*r, snapshot);
    Pump(*r);
    return;
  }
}

void RbTransport::SendEntries(int rank, const std::vector<RbWireEntry>& entries) {
  if (entries.empty() || live_remotes() == 0) {
    return;
  }
  SimStats& stats = kernel_->stats();
  // Broadcast: the payload (entry records + images) is serialized once; only the
  // per-connection header (frame_seq) and CRC differ per remote.
  std::vector<uint8_t> payload = RbWireCodec::EncodeEntriesPayload(entries);
  // Ack-horizon metadata: entries within a rank publish in offset order, so one
  // acked frame advances the rank's delta horizon to its highest entry offset.
  uint64_t max_off = 0;
  for (const RbWireEntry& e : entries) {
    max_off = std::max(max_off, e.entry_off);
  }
  RbLeaderClock clock = leader_clock_ ? leader_clock_() : RbLeaderClock{};
  for (auto& r : remotes_) {
    if (r->dead || r->awaiting_snapshot) {
      continue;  // A replacement's stream starts with its checkpoint, never data.
    }
    uint64_t seq = ++r->frames_sent;
    std::vector<uint8_t> frame = RbWireCodec::EntriesFrameFromPayload(
        epoch_, static_cast<uint32_t>(rank), seq,
        static_cast<uint32_t>(entries.size()), payload);
    Seal(&frame);
    ++stats.rb_frames_sent;
    stats.rb_frame_bytes_sent += frame.size();
    ++stats.EpochRow(epoch_).frames_sent;
    r->unacked.push_back(FrameMeta{seq, static_cast<uint32_t>(rank), max_off, clock});
    r->sendq.push_back(std::move(frame));
    Pump(*r);
  }
}

void RbTransport::SendSyncLog(uint64_t start_index,
                              const std::vector<RbSyncLogRecord>& records) {
  if (records.empty() || live_remotes() == 0) {
    return;
  }
  SimStats& stats = kernel_->stats();
  stats.sync_log_records_streamed += records.size();
  // Broadcast: the record payload is serialized once; only the per-connection
  // header (frame_seq) and CRC differ per remote.
  std::vector<uint8_t> payload = RbWireCodec::EncodeSyncLogPayload(start_index, records);
  for (auto& r : remotes_) {
    if (r->dead || r->awaiting_snapshot) {
      continue;  // A replacement's stream starts with its checkpoint, never data.
    }
    uint64_t seq = ++r->frames_sent;
    std::vector<uint8_t> frame = RbWireCodec::SyncLogFrameFromPayload(
        epoch_, seq, static_cast<uint32_t>(records.size()), payload);
    Seal(&frame);
    ++stats.rb_frames_sent;
    ++stats.sync_log_frames_sent;
    stats.rb_frame_bytes_sent += frame.size();
    ++stats.EpochRow(epoch_).frames_sent;
    r->sendq.push_back(std::move(frame));
    Pump(*r);
  }
}

bool RbTransport::Stalled() const {
  for (const auto& r : remotes_) {
    if (RemoteStalled(*r)) {
      return true;
    }
  }
  return false;
}

bool RbTransport::IsRemote(int replica_index) const {
  for (const auto& r : remotes_) {
    if (r->replica_index == replica_index) {
      return true;
    }
  }
  return false;
}

bool RbTransport::RemoteLinkDead(int replica_index) const {
  for (const auto& r : remotes_) {
    if (r->replica_index == replica_index) {
      return r->dead;
    }
  }
  return true;  // Never served: there is no live link to retire.
}

uint64_t RbTransport::SyncCursorFor(int replica_index) const {
  for (const auto& r : remotes_) {
    if (r->replica_index == replica_index) {
      return r->sync_cursor;
    }
  }
  return 0;
}

void RbTransport::Seal(std::vector<uint8_t>* frame) {
  if (options_.auth != nullptr) {
    options_.auth->SealFrame(frame, RbAuthDirection::kLeaderToReplica);
    ++kernel_->stats().rb_auth_frames_sealed;
  }
}

int RbTransport::live_remotes() const {
  int n = 0;
  for (const auto& r : remotes_) {
    n += r->dead ? 0 : 1;
  }
  return n;
}

void RbTransport::MarkDead(Remote& r, const char* why) {
  if (r.dead) {
    return;
  }
  r.dead = true;
  DisarmConnectTimer(r);
  // Nothing queued for a dead link can ever be written. Dropping the queue here
  // (not at revival) is what frees a replacement's held checkpoint when its
  // connection fails or times out instead of leaking it for the run's remainder;
  // unacked metadata goes with it — those frames may never have arrived, so they
  // must not fold into the delta basis.
  r.sendq.clear();
  r.sendq_head_off = 0;
  r.unacked.clear();
  ++deaths_;
  ++kernel_->stats().EpochRow(epoch_).deaths;  // Attributed to the epoch that ended.
  ++epoch_;  // Frames of the torn stream can never be mistaken for a future one.
  ++kernel_->stats().rb_remote_deaths;
  std::fprintf(stderr, "[rb-transport] remote replica %d link down (%s); epoch -> %u\n",
               r.replica_index, why, epoch_);
  // A leader stalled on this remote's acks must not hang on a dead link.
  stall_queue_.Wake();
  if (on_remote_death_) {
    on_remote_death_(r.replica_index);
  }
}

void RbTransport::DetachForMigration(int replica_index) {
  for (auto& r : remotes_) {
    if (r->replica_index != replica_index) {
      continue;
    }
    REMON_CHECK_MSG(!r->dead, "DetachForMigration: link already dead");
    DisarmConnectTimer(*r);
    if (r->sock != nullptr && r->observer_id != 0) {
      r->sock->poll_queue().Remove(r->observer_id);
      r->observer_id = 0;
    }
    if (r->sock != nullptr) {
      r->sock->Shutdown(kShutRdWr);
    }
    r->dead = true;
    r->sendq.clear();
    r->sendq_head_off = 0;
    r->unacked.clear();
    ++epoch_;  // Frames of the retired stream can never be mistaken for the next.
    std::fprintf(stderr,
                 "[rb-transport] remote replica %d detached for migration; epoch -> %u\n",
                 replica_index, epoch_);
    // A leader stalled on this remote's acks must not hang across the move.
    stall_queue_.Wake();
    return;
  }
  REMON_CHECK_MSG(false, "DetachForMigration: replica was never remote");
}

RbDeltaBasis RbTransport::DeltaBasisFor(int replica_index) const {
  for (const auto& r : remotes_) {
    if (r->replica_index == replica_index) {
      return r->basis;
    }
  }
  return RbDeltaBasis{};
}

void RbTransport::FoldAckedMeta(Remote& r) {
  while (!r.unacked.empty() && r.unacked.front().frame_seq <= r.frames_acked) {
    const FrameMeta& m = r.unacked.front();
    RbDeltaBasis& b = r.basis;
    if (!b.valid || b.reset_generation != m.clock.reset_generation) {
      // An RB reset rewrote every offset wholesale. The acked frame is the first
      // proof of what the mirror holds in the new generation: every rank restarts
      // at its data start (offset 0 in basis terms) except what folds from here.
      b.valid = true;
      b.reset_generation = m.clock.reset_generation;
      b.from_off.clear();
    }
    if (b.from_off.size() <= m.rank) {
      b.from_off.resize(static_cast<size_t>(m.rank) + 1, 0);
    }
    b.from_off[m.rank] = std::max(b.from_off[m.rank], m.max_entry_off);
    b.fm_version = std::max(b.fm_version, m.clock.fm_version);
    b.epoll_version = std::max(b.epoll_version, m.clock.epoll_version);
    r.unacked.pop_front();
  }
}

void RbTransport::ArmConnectTimer(Remote& r) {
  if (options_.connect_timeout <= 0) {
    return;
  }
  Remote* rp = &r;  // Slots are pooled in unique_ptrs and never erased.
  r.connect_timer =
      kernel_->sim()->queue().ScheduleAfter(options_.connect_timeout, [this, rp] {
        rp->connect_timer = 0;
        if (rp->dead || rp->sock == nullptr) {
          return;
        }
        if (rp->sock->state() == StreamSocket::State::kConnecting ||
            rp->sock->state() == StreamSocket::State::kCreated) {
          MarkDead(*rp, "connect timed out");
        }
      });
}

void RbTransport::DisarmConnectTimer(Remote& r) {
  if (r.connect_timer != 0) {
    kernel_->sim()->queue().Cancel(r.connect_timer);
    r.connect_timer = 0;
  }
}

void RbTransport::Pump(Remote& r) {
  if (r.dead || !r.sock) {
    return;
  }
  if (r.sock->state() == StreamSocket::State::kConnecting ||
      r.sock->state() == StreamSocket::State::kCreated) {
    return;  // SYN still in flight; the poll observer re-pumps on completion.
  }
  if (r.sock->state() == StreamSocket::State::kClosed) {
    MarkDead(r, r.sock->connect_failed() ? "connect refused" : "connection closed");
    return;
  }
  // Established: the pending-connect watchdog has nothing left to watch.
  DisarmConnectTimer(r);

  // Authenticated streams write nothing before the join attestation verifies —
  // frames queue locally and the in-flight bound throttles the leader meanwhile.
  if (r.attested) {
    if (!DrainSendQueue(r.sock.get(), &r.sendq, &r.sendq_head_off)) {
      MarkDead(r, "write failed");
      return;
    }
  }

  // Ack stream.
  uint8_t buf[kReadChunk];
  for (;;) {
    int64_t n = r.sock->Read(buf, sizeof(buf), 0);
    if (n == -kEAGAIN) {
      break;
    }
    if (n == 0) {
      MarkDead(r, "peer closed");
      return;
    }
    if (n < 0) {
      MarkDead(r, "read failed");
      return;
    }
    r.parser.Feed(buf, static_cast<size_t>(n));
  }
  bool was_stalled = RemoteStalled(r);
  SimStats& stats = kernel_->stats();
  RbWireFrame frame;
  for (;;) {
    RbFrameParser::Status st = r.parser.Next(&frame);
    if (st == RbFrameParser::Status::kCorrupt) {
      if (options_.auth != nullptr) {
        ++stats.rb_auth_frames_rejected;
      }
      MarkDead(r, r.parser.corrupt_reason());
      return;
    }
    if (st != RbFrameParser::Status::kFrame) {
      break;
    }
    // Epoch monotonicity holds on every frame type: a replayed frame of a torn
    // stream (CRC- or even MAC-valid within its own epoch) identifies itself by
    // its stale epoch, and the only safe response is to tear the link.
    if (frame.epoch == 0 || frame.epoch < r.max_peer_epoch) {
      ++stats.rb_epoch_regressions;
      MarkDead(r, "peer epoch regressed");
      return;
    }
    if (frame.type == RbFrameType::kJoinAttest) {
      if (!HandleAttest(r, frame)) {
        return;
      }
      continue;
    }
    if (frame.type != RbFrameType::kAck) {
      // The replica-to-leader flow carries acks and attestations, nothing else; a
      // data frame here is an injected or reflected one.
      MarkDead(r, "unexpected frame type on the ack stream");
      return;
    }
    r.max_peer_epoch = std::max(r.max_peer_epoch, frame.epoch);
    if (frame.ack_seq > r.frames_sent) {
      MarkDead(r, "ack for a frame never sent");
      return;
    }
    // Acks are per-connection state: a dead connection's acks can never arrive
    // (the socket is gone), and an epoch bump caused by *another* remote's death
    // must not invalidate this live link's in-flight acks — that would leave it
    // stalled forever. The echoed epoch identifies the stream, nothing more.
    r.frames_acked = std::max(r.frames_acked, frame.ack_seq);
    FoldAckedMeta(r);
    ++stats.rb_frames_acked;
    ++stats.EpochRow(frame.epoch).frames_acked;
    // v4: acks piggyback the replica's sync-log replay cursor; the latched
    // maximum is what the master's wraparound gate runs on.
    if (frame.ack_cursor > r.sync_cursor) {
      r.sync_cursor = frame.ack_cursor;
      ++stats.sync_cursor_acks;
      if (on_sync_cursor_) {
        on_sync_cursor_(r.replica_index);
      }
    }
  }
  if (was_stalled && !RemoteStalled(r)) {
    stall_queue_.Wake();
  }
}

bool RbTransport::HandleAttest(Remote& r, const RbWireFrame& frame) {
  SimStats& stats = kernel_->stats();
  if (options_.auth == nullptr) {
    MarkDead(r, "unexpected join attestation on an unauthenticated stream");
    return false;
  }
  if (r.attested) {
    MarkDead(r, "duplicate join attestation");
    return false;
  }
  if (frame.attest_replica != static_cast<uint32_t>(r.replica_index) ||
      frame.attest_digest != options_.config_digest) {
    ++stats.rb_auth_join_rejects;
    MarkDead(r, "join attestation refused (identity/config digest mismatch)");
    return false;
  }
  // v5: the attested placement must be the machine this slot was commanded to
  // connect to. Respawn-as-migration changes the commanded placement; a peer
  // claiming any other machine is answering a different (or stale) command.
  if (frame.attest_machine != r.machine) {
    ++stats.rb_auth_join_rejects;
    MarkDead(r, "join attestation refused (placement mismatch)");
    return false;
  }
  r.attested = true;
  r.max_peer_epoch = std::max(r.max_peer_epoch, frame.epoch);
  r.sync_cursor = std::max(r.sync_cursor, frame.attest_cursor);
  ++stats.rb_auth_joins;
  if (r.awaiting_snapshot && on_attested_join_) {
    // A replacement: the front end captures the leader checkpoint (deferred to
    // its own event — we are inside the pump) and hands it to EnqueueSnapshot.
    on_attested_join_(r.replica_index, frame.attest_cursor);
  } else if (!r.sendq.empty()) {
    // Frames enqueued while the attestation was in flight were held by this
    // pump's drain pass (it runs before the read loop); release them now, or the
    // link goes idle with the leader stalled on acks that can never come.
    if (!DrainSendQueue(r.sock.get(), &r.sendq, &r.sendq_head_off)) {
      MarkDead(r, "write failed");
      return false;
    }
  }
  return true;
}

// --- RemoteSyncAgent (remote side) ------------------------------------------------

RemoteSyncAgent::RemoteSyncAgent(Kernel* kernel, IpMon* mon, uint32_t machine,
                                 uint16_t port)
    : kernel_(kernel), mon_(mon), machine_(machine), port_(port) {}

RemoteSyncAgent::~RemoteSyncAgent() {
  if (listener_ && listener_observer_ != 0) {
    listener_->poll_queue().Remove(listener_observer_);
  }
  if (conn_ && conn_observer_ != 0) {
    conn_->poll_queue().Remove(conn_observer_);
  }
}

void RemoteSyncAgent::set_auth(const RbAuthContext* auth, uint64_t config_digest) {
  auth_ = auth;
  config_digest_ = config_digest;
  parser_.set_auth(auth, RbAuthDirection::kLeaderToReplica);
}

void RemoteSyncAgent::Start() {
  listener_ = kernel_->net()->CreateStream(machine_);
  REMON_CHECK_MSG(listener_->Bind(port_) == 0, "remote sync agent: bind failed");
  REMON_CHECK_MSG(listener_->Listen(1) == 0, "remote sync agent: listen failed");
  listener_observer_ =
      listener_->poll_queue().AddObserver([this] { OnListenerPoll(); });
}

void RemoteSyncAgent::OnListenerPoll() {
  if (conn_ != nullptr || shutdown_) {
    return;
  }
  std::shared_ptr<StreamSocket> c = listener_->TryAccept();
  if (c == nullptr) {
    return;
  }
  conn_ = std::move(c);
  conn_observer_ = conn_->poll_queue().AddObserver([this] { OnConnPoll(); });
  if (auth_ != nullptr) {
    // Attested join: identity + config digest as the connection's very first
    // frame — the leader ships nothing (data or checkpoint) until it verifies.
    // The epoch is this agent's best knowledge (1 before any join); the sealed
    // tag binds it, and the leader only checks it for monotonicity.
    std::vector<uint8_t> attest = RbWireCodec::EncodeJoinAttest(
        join_epoch_ > 0 ? join_epoch_ : 1,
        static_cast<uint32_t>(mon_->config().replica_index), config_digest_,
        sync_agent_ != nullptr ? sync_agent_->read_cursor() : 0,
        machine_);  // v5: the placement this agent actually serves.
    auth_->SealFrame(&attest, RbAuthDirection::kReplicaToLeader);
    ++kernel_->stats().rb_auth_frames_sealed;
    ackq_.push_back(std::move(attest));
    FlushAckQueue();
  }
  DrainConn();
}

void RemoteSyncAgent::OnConnPoll() {
  FlushAckQueue();
  DrainConn();
}

void RemoteSyncAgent::DrainConn() {
  if (conn_ == nullptr || shutdown_) {
    return;
  }
  uint8_t buf[kReadChunk];
  for (;;) {
    int64_t n = conn_->Read(buf, sizeof(buf), 0);
    if (n == -kEAGAIN || n == 0 || n < 0) {
      // EOF here is the leader going away at end of run — nothing to replay.
      break;
    }
    parser_.Feed(buf, static_cast<size_t>(n));
  }
  ProcessParsedFrames();
}

void RemoteSyncAgent::ProcessParsedFrames() {
  RbWireFrame frame;
  for (;;) {
    RbFrameParser::Status st = parser_.Next(&frame);
    if (st == RbFrameParser::Status::kCorrupt) {
      // A reliable in-order stream does not corrupt silently; a bad MAC means an
      // active adversary. Either way: treat it as a torn link — reject, close,
      // and let the leader's transport report the death.
      ++frames_rejected_;
      if (auth_ != nullptr) {
        ++kernel_->stats().rb_auth_frames_rejected;
      }
      std::fprintf(stderr, "[rb-agent] replica %d: %s; tearing link\n",
                   mon_->config().replica_index, parser_.corrupt_reason());
      Shutdown();
      return;
    }
    if (st != RbFrameParser::Status::kFrame) {
      return;
    }
    HandleFrame(std::move(frame));
    if (shutdown_) {
      return;  // A refused join or diverged frame tore the link down mid-drain.
    }
  }
}

void RemoteSyncAgent::InjectRawBytesForTest(const uint8_t* data, size_t len) {
  parser_.Feed(data, len);
  ProcessParsedFrames();
}

void RemoteSyncAgent::SendRawAckForTest(std::vector<uint8_t> frame) {
  ackq_.push_back(std::move(frame));
  FlushAckQueue();
}

void RemoteSyncAgent::HandleFrame(RbWireFrame frame) {
  if (shutdown_) {
    return;  // A torn link applies nothing more.
  }
  SimStats& stats = kernel_->stats();
  // Epoch monotonicity holds on every frame type: a replayed frame of an earlier
  // stream identifies itself by its stale epoch even when its CRC — or its MAC,
  // valid under that epoch's key — checks out. The only safe response is to tear
  // the link; dropping and continuing would let an adversary probe freely.
  if (frame.epoch == 0 || frame.epoch < max_epoch_seen_) {
    ++frames_rejected_;
    ++stats.rb_epoch_regressions;
    std::fprintf(stderr,
                 "[rb-agent] replica %d: stale epoch %u on the stream (at %u); "
                 "tearing link\n",
                 mon_->config().replica_index, frame.epoch, max_epoch_seen_);
    Shutdown();
    return;
  }
  max_epoch_seen_ = frame.epoch;
  // Within-connection replay gate: the leader's frame_seq is strictly increasing
  // per connection (across epoch bumps too), so a repeated sequence number is a
  // captured frame re-sent. Test-built frames use seq 0 and bypass the gate.
  if (frame.frame_seq != 0) {
    if (frame.frame_seq <= max_data_seq_) {
      ++frames_rejected_;
      if (auth_ != nullptr) {
        ++stats.rb_auth_frames_rejected;
      }
      std::fprintf(stderr,
                   "[rb-agent] replica %d: replayed frame seq=%llu (stream at %llu); "
                   "tearing link\n",
                   mon_->config().replica_index,
                   static_cast<unsigned long long>(frame.frame_seq),
                   static_cast<unsigned long long>(max_data_seq_));
      Shutdown();
      return;
    }
    max_data_seq_ = frame.frame_seq;
  }
  if (IsSnapshotFrameType(frame.type)) {
    HandleSnapshotFrame(frame);
    return;
  }
  if (frame.type != RbFrameType::kEntries && frame.type != RbFrameType::kSyncLog) {
    return;
  }
  if (frame.epoch < join_epoch_) {
    // Stale data traffic — entry and sync-log frames alike — from before the
    // epoch this agent was seeded at can never be applied over the checkpoint
    // (docs/RB_WIRE_FORMAT.md, "Join handshake").
    ++frames_rejected_;
    return;
  }
  if (ReadyFor(frame)) {
    ApplyFrame(frame);
  } else {
    pending_.push_back(std::move(frame));
  }
}

bool RemoteSyncAgent::InjectFrameForTest(RbWireFrame frame) {
  uint64_t before = frames_applied_;
  HandleFrame(std::move(frame));
  return frames_applied_ > before;
}

bool RemoteSyncAgent::ReadyFor(const RbWireFrame& frame) const {
  if (frame.type == RbFrameType::kSyncLog) {
    // No agent at all is a configuration divergence, not a not-ready state: apply
    // immediately so the reject tears the link down instead of pending forever.
    return sync_agent_ == nullptr || sync_agent_->log_valid();
  }
  return mon_->rb().valid();
}

void RemoteSyncAgent::HandleSnapshotFrame(const RbWireFrame& frame) {
  SimStats& stats = kernel_->stats();
  bool ok = false;
  std::string why;
  switch (frame.type) {
    case RbFrameType::kSnapshotBegin:
      assembler_.Reset();
      ok = assembler_.Begin(frame.payload);
      why = assembler_.error();
      break;
    case RbFrameType::kSnapshotDelta:
      assembler_.Reset();
      ok = assembler_.BeginDelta(frame.payload);
      why = assembler_.error();
      break;
    case RbFrameType::kSnapshotChunk:
      ok = assembler_.AddChunk(frame.payload);
      why = assembler_.error();
      if (ok) {
        ++stats.rb_snapshot_chunks_applied;
      }
      break;
    case RbFrameType::kSnapshotEnd: {
      ok = assembler_.End(frame.payload);
      why = assembler_.error();
      if (ok) {
        SnapshotApplyResult res = ApplySnapshotToMirror(
            kernel_, mon_, sync_agent_, assembler_.snapshot(), assembler_.image());
        ok = res.ok;
        why = res.error;
        if (ok) {
          ++joins_;
          join_epoch_ = frame.epoch;
          last_join_lockstep_cursor_ = assembler_.snapshot().lockstep_cursor;
          ++stats.rb_replica_joins;
          ++stats.EpochRow(frame.epoch).joins;
          stats.rb_snapshot_entries_restored += res.entries_restored;
          stats.rb_snapshot_epoll_lag += res.epoll_lag;
        }
      }
      assembler_.Reset();  // Completed or failed, the image buffer is done.
      break;
    }
    default:
      why = "unexpected frame type";
      break;
  }
  if (!ok) {
    std::fprintf(stderr, "[rb-agent] replica %d refused snapshot: %s\n",
                 mon_->config().replica_index, why.c_str());
    ++stats.rb_snapshot_rejects;
    ++frames_rejected_;
    Shutdown();  // A refused join is a dead link again; the leader decides what next.
    return;
  }
  ++frames_applied_;
  ++stats.rb_frames_applied;
  ++stats.EpochRow(frame.epoch).frames_applied;
  SendAck(frame.epoch, frame.frame_seq);
}

void RemoteSyncAgent::OnReplicaRbReady() {
  std::vector<RbWireFrame> pending = std::move(pending_);
  pending_.clear();
  for (const RbWireFrame& f : pending) {
    if (shutdown_) {
      return;  // A diverged frame tore the link down; drop the rest.
    }
    ApplyFrame(f);
  }
}

void RemoteSyncAgent::ApplyFrame(const RbWireFrame& frame) {
  bool ok = true;
  if (frame.type == RbFrameType::kSyncLog) {
    ok = ApplySyncLog(frame);
  } else {
    for (const RbWireEntry& e : frame.entries) {
      ok = ApplyEntry(frame.rank, e) && ok;
    }
  }
  if (!ok) {
    std::fprintf(stderr,
                 "[rb-agent] replica %d rejected %s frame seq=%llu (stream diverged)\n",
                 mon_->config().replica_index,
                 frame.type == RbFrameType::kSyncLog ? "sync-log" : "entries",
                 static_cast<unsigned long long>(frame.frame_seq));
    ++frames_rejected_;
    Shutdown();  // A malformed record means the streams have diverged.
    return;
  }
  ++frames_applied_;
  kernel_->stats().rb_frames_applied += 1;
  ++kernel_->stats().EpochRow(frame.epoch).frames_applied;
  SendAck(frame.epoch, frame.frame_seq);
}

bool RemoteSyncAgent::ApplySyncLog(const RbWireFrame& frame) {
  if (sync_agent_ == nullptr ||
      !sync_agent_->ApplyRemoteLog(frame.sync_start, frame.sync_records)) {
    return false;
  }
  SimStats& stats = kernel_->stats();
  ++stats.sync_log_frames_applied;
  stats.sync_log_records_applied += frame.sync_records.size();
  return true;
}

bool RemoteSyncAgent::ApplyEntry(uint32_t rank, const RbWireEntry& e) {
  RbView rb = mon_->rb();
  if (static_cast<int>(rank) >= rb.max_ranks() ||
      e.image.size() < kRbEntryHeaderSize ||
      e.entry_off < rb.RankDataStart(static_cast<int>(rank)) ||
      e.entry_off > rb.RankDataEnd(static_cast<int>(rank)) ||
      // Subtraction form: `entry_off + image.size()` could wrap and sneak a wild
      // write past the range check.
      e.image.size() > rb.RankDataEnd(static_cast<int>(rank)) - e.entry_off ||
      (e.final_state != kRbArgsReady && e.final_state != kRbResultsReady)) {
    return false;
  }
  // Replay the image into the mirror, preserving the first 8 bytes (the mirror's
  // own state word and the waiter count the local slave maintains), then flip the
  // state word last and wake any waiter parked on it — the same publication order
  // the leader-local SHM path uses.
  rb.WriteBytes(e.entry_off + kRbOffSysno, e.image.data() + kRbOffSysno,
                e.image.size() - kRbOffSysno);
  uint32_t cur = rb.ReadU32(e.entry_off + kRbOffState);
  if (e.final_state > cur) {
    rb.WriteU32(e.entry_off + kRbOffState, e.final_state);
  }
  ++entries_applied_;
  ++kernel_->stats().rb_entries_applied;

  uint64_t off_in_page = 0;
  Page* frame = mon_->process()->mem().ResolveFrame(rb.AddrOf(e.entry_off + kRbOffState),
                                                    &off_in_page);
  if (frame != nullptr) {
    kernel_->futex().QueueFor(frame, off_in_page).Wake();
  }
  return true;
}

void RemoteSyncAgent::SendAck(uint32_t epoch, uint64_t frame_seq) {
  // The agent does not originate epochs; it echoes the applied frame's epoch so the
  // leader can discard acknowledgments that straddle an epoch bump. v4: every ack
  // piggybacks this replica's sync-log replay cursor — the only channel the
  // master's wraparound gate has to a remote replica's consumption progress.
  last_ack_epoch_ = epoch;
  last_ack_seq_ = frame_seq;
  std::vector<uint8_t> ack = RbWireCodec::EncodeAck(
      epoch, frame_seq, sync_agent_ != nullptr ? sync_agent_->read_cursor() : 0);
  if (auth_ != nullptr) {
    auth_->SealFrame(&ack, RbAuthDirection::kReplicaToLeader);
    ++kernel_->stats().rb_auth_frames_sealed;
  }
  ackq_.push_back(std::move(ack));
  FlushAckQueue();
}

void RemoteSyncAgent::SendCursorUpdate() {
  // Re-announce the newest applied frame with the advanced cursor. Before any
  // frame applied there is no consumption the master could be parked on.
  if (conn_ == nullptr || shutdown_ || last_ack_epoch_ == 0) {
    return;
  }
  SendAck(last_ack_epoch_, last_ack_seq_);
}

void RemoteSyncAgent::FlushAckQueue() {
  if (conn_ == nullptr || shutdown_) {
    return;
  }
  DrainSendQueue(conn_.get(), &ackq_, &ackq_head_off_);
}

void RemoteSyncAgent::Shutdown() {
  if (shutdown_) {
    return;
  }
  shutdown_ = true;
  if (conn_ != nullptr) {
    conn_->Shutdown(kShutRdWr);
  }
  if (listener_ != nullptr) {
    listener_->OnDescriptionClosed(0);  // Unbind the listening port.
  }
}

}  // namespace remon

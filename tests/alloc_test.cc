// Steady-state allocation accounting for the coroutine runtime and event loop.
//
// This binary replaces the global operator new/delete with counting hooks, pins a
// single-rank workload into its steady state, and asserts the per-syscall path —
// trap event, dispatch, blocking retries, nested coroutine frames, completion
// bounce — performs ZERO heap allocations across a window of hundreds of further
// system calls. It also checks the FramePool actually recycles frames (nonzero
// hit rate) and that zero-delay events ride the ready lane, i.e. the machinery
// under test is the machinery actually exercised.
//
// The counters are plain (non-atomic): the simulation and the test both run on
// the one main thread.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>

#include "tests/test_util.h"

namespace {
uint64_t g_heap_allocs = 0;
}  // namespace

void* operator new(std::size_t n) {
  ++g_heap_allocs;
  void* p = std::malloc(n != 0 ? n : 1);
  if (p == nullptr) {
    std::abort();
  }
  return p;
}

void* operator new[](std::size_t n) { return ::operator new(n); }

void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  ++g_heap_allocs;
  return std::malloc(n != 0 ? n : 1);
}

void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return ::operator new(n, std::nothrow);
}

void* operator new(std::size_t n, std::align_val_t al) {
  ++g_heap_allocs;
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(al), n != 0 ? n : 1) != 0) {
    std::abort();
  }
  return p;
}

void* operator new[](std::size_t n, std::align_val_t al) { return ::operator new(n, al); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace remon {
namespace {

// One steady-state unit of work: a nested coroutine (its frame cycles through the
// FramePool every iteration) performing a read-modify-write at fixed offsets plus
// a couple of fast calls. All I/O overwrites pre-sized file bytes so the VFS never
// grows an inode.
GuestTask<void> WorkChunk(Guest& g, int fd, GuestAddr buf) {
  int64_t n = co_await g.Pread(fd, buf, 256, 0);
  REMON_CHECK(n == 256);
  n = co_await g.Pwrite(fd, buf, 256, 1024);
  REMON_CHECK(n == 256);
  co_await g.Getpid();
  co_await g.Fstat(fd, buf);
}

TEST(AllocTest, SteadyStateSyscallPathIsAllocationFree) {
  SimWorld w;
  w.fs.WriteWholeFile("/tmp/steady.bin", std::string(4096, 'x'));
  w.sim.frame_pool().ResetStats();

  Process* p = w.NewProcess("steady");
  bool finished = false;
  w.kernel.SpawnThread(p, [&finished](Guest& g) -> GuestTask<void> {
    int64_t fd = co_await g.Open("/tmp/steady.bin", kO_RDWR);
    REMON_CHECK(fd >= 0);
    GuestAddr buf = g.Alloc(512);
    for (int i = 0; i < 4000; ++i) {
      co_await WorkChunk(g, static_cast<int>(fd), buf);
    }
    co_await g.Close(static_cast<int>(fd));
    finished = true;
  });

  // Warm up: run time slices until well past pool/queue/scratch growth.
  TimeNs t = 0;
  const TimeNs kStep = Millis(1);
  while (w.sim.stats().syscalls_total < 2000 && !finished) {
    t += kStep;
    w.Run(t);
  }
  ASSERT_FALSE(finished) << "workload too small to reach a steady-state window";

  // Measure: several hundred more syscalls must not touch the heap at all.
  const uint64_t syscalls_before = w.sim.stats().syscalls_total;
  const uint64_t allocs_before = g_heap_allocs;
  while (w.sim.stats().syscalls_total < syscalls_before + 500 && !finished) {
    t += kStep;
    w.Run(t);
  }
  const uint64_t syscalls_in_window = w.sim.stats().syscalls_total - syscalls_before;
  const uint64_t allocs_in_window = g_heap_allocs - allocs_before;
  ASSERT_GE(syscalls_in_window, 500u);
  EXPECT_EQ(allocs_in_window, 0u)
      << allocs_in_window << " heap allocations across " << syscalls_in_window
      << " steady-state syscalls";

  // The run must have exercised the machinery whose allocation-freedom is claimed.
  const FramePool::Stats fp = w.sim.frame_pool().stats();
  EXPECT_GT(fp.pool_hits, 0u);
  EXPECT_GT(fp.hit_rate(), 0.9);

  w.Run();
  EXPECT_TRUE(finished);
  // Zero-delay events (root-finish deferral, frame reaping) ride the ready lane.
  EXPECT_GT(w.sim.queue().lane_scheduled(), 0u);
}

TEST(AllocTest, FramePoolRecyclesNestedFrames) {
  SimWorld w;
  w.fs.WriteWholeFile("/tmp/pool.bin", std::string(4096, 'y'));
  w.sim.frame_pool().ResetStats();

  Process* p = w.NewProcess("pool");
  w.kernel.SpawnThread(p, [](Guest& g) -> GuestTask<void> {
    int64_t fd = co_await g.Open("/tmp/pool.bin", kO_RDWR);
    GuestAddr buf = g.Alloc(512);
    for (int i = 0; i < 100; ++i) {
      co_await WorkChunk(g, static_cast<int>(fd), buf);
    }
    co_await g.Close(static_cast<int>(fd));
  });
  w.Run();

  const FramePool::Stats fp = w.sim.frame_pool().stats();
  // 100 nested frames + 1 root; after the first WorkChunk frame is recycled,
  // every later one is a free-list hit of the same size class.
  EXPECT_GE(fp.allocs, 101u);
  EXPECT_GE(fp.pool_hits, 99u);
  EXPECT_EQ(fp.live, 0u);
  EXPECT_EQ(fp.allocs, fp.frees);
}

}  // namespace
}  // namespace remon

// Figure 4: the Phoronix suite under all five spatial relaxation policies plus the
// no-IP-MON baseline (2 replicas), including the nginx server column, versus the
// paper's bars.

#include <cstdio>

#include "src/harness/runner.h"
#include "src/harness/table.h"

namespace remon {
namespace {

constexpr PolicyLevel kLevels[] = {
    PolicyLevel::kBase, PolicyLevel::kNonsocketRo, PolicyLevel::kNonsocketRw,
    PolicyLevel::kSocketRo, PolicyLevel::kSocketRw,
};

void Run() {
  std::printf("== Figure 4: Phoronix, spatial relaxation policies (2 replicas) ==\n");
  Table table({"benchmark", "no IP-MON", "BASE", "NS_RO", "NS_RW", "S_RO", "S_RW"});

  std::vector<std::vector<double>> columns(6);
  for (const WorkloadSpec& spec : PhoronixSuite()) {
    std::vector<std::string> row{spec.name};
    RunConfig cp;
    cp.mode = MveeMode::kGhumveeOnly;
    cp.replicas = 2;
    double v = NormalizedSuiteTime(spec, cp);
    row.push_back(Table::Num(v));
    columns[0].push_back(v);
    int col = 1;
    for (PolicyLevel level : kLevels) {
      RunConfig ip;
      ip.mode = MveeMode::kRemon;
      ip.replicas = 2;
      ip.level = level;
      v = NormalizedSuiteTime(spec, ip);
      row.push_back(Table::Num(v));
      columns[static_cast<size_t>(col++)].push_back(v);
    }
    table.AddRow(std::move(row));
  }

  // The nginx column: a real server benchmark driven by a wrk-style client over the
  // low-latency gigabit link.
  {
    ServerSpec nginx = ServerByName("nginx");
    ClientSpec client;
    client.connections = 48;  // wrk saturates the server.
    client.total_requests = 600;
    client.request_bytes = 512;  // Small pages: the server, not the link, limits.
    LinkParams link{60 * kMicrosecond, 0.125};
    std::vector<std::string> row{"nginx (wrk)"};
    RunConfig cp;
    cp.mode = MveeMode::kGhumveeOnly;
    cp.replicas = 2;
    double v = NormalizedServerTime(nginx, client, cp, link);
    row.push_back(Table::Num(v));
    columns[0].push_back(v);
    int col = 1;
    for (PolicyLevel level : kLevels) {
      RunConfig ip;
      ip.mode = MveeMode::kRemon;
      ip.replicas = 2;
      ip.level = level;
      v = NormalizedServerTime(nginx, client, ip, link);
      row.push_back(Table::Num(v));
      columns[static_cast<size_t>(col++)].push_back(v);
    }
    table.AddRow(std::move(row));
  }

  std::vector<std::string> geo{"GEOMEAN"};
  for (auto& col : columns) {
    geo.push_back(Table::Num(GeoMean(col)));
  }
  table.AddRow(std::move(geo));
  table.Print();

  std::printf(
      "\npaper (fig. 4): gzip 1.11/1.11/1.04/1.04/1.04/1.05, flac 1.17/1.17/1.08/1.02x3,\n"
      "  ogg 1.09/1.10/1.06/1.01x3, mencoder 1.05/1.04/1.01/1.00x3, phpbench\n"
      "  2.48/1.90/1.90/1.13x3, unpack-linux 1.47/1.48/1.44/1.22/1.17/1.17,\n"
      "  network-loopback 25.46/25.36/24.89/17.03/9.18/3.00, nginx 9.77/7.76/7.74/7.58/6.65/3.71\n");
}

}  // namespace
}  // namespace remon

int main() {
  remon::Run();
  return 0;
}

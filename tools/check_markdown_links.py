#!/usr/bin/env python3
"""Checks intra-repo markdown links.

Scans every tracked .md file for inline links/images (`[text](target)`) and
bare reference definitions (`[id]: target`), resolves relative targets against
the linking file, and fails with a non-zero exit status when a target file does
not exist. External schemes (http/https/mailto) are skipped — CI must not
depend on the network — and pure in-page anchors (`#section`) are checked only
for non-emptiness.

Usage: python3 tools/check_markdown_links.py [repo_root]
"""

import os
import re
import sys

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REFDEF_RE = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")
SKIP_DIRS = {".git", "build", ".claude", "_deps"}


def markdown_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS and not d.startswith("build")]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def check_file(root, path):
    errors = []
    with open(path, encoding="utf-8") as f:
        text = f.read()
    targets = LINK_RE.findall(text) + REFDEF_RE.findall(text)
    for target in targets:
        if target.startswith(SKIP_SCHEMES):
            continue
        if target.startswith("#"):
            if len(target) == 1:
                errors.append((path, target, "empty anchor"))
            continue
        file_part = target.split("#", 1)[0]
        if not file_part:
            continue
        if file_part.startswith("/"):
            resolved = os.path.join(root, file_part.lstrip("/"))
        else:
            resolved = os.path.join(os.path.dirname(path), file_part)
        if not os.path.exists(resolved):
            errors.append((path, target, "target does not exist"))
    return errors


def main():
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    all_errors = []
    checked = 0
    for path in sorted(markdown_files(root)):
        checked += 1
        all_errors.extend(check_file(root, path))
    rel = os.path.relpath
    for path, target, why in all_errors:
        print(f"DEAD LINK {rel(path, root)}: ({target}) — {why}")
    print(f"checked {checked} markdown files, {len(all_errors)} dead intra-repo links")
    return 1 if all_errors else 0


if __name__ == "__main__":
    sys.exit(main())

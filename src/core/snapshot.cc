#include "src/core/snapshot.h"

#include <algorithm>
#include <cstring>

#include "src/core/ghumvee.h"
#include "src/core/ipmon.h"
#include "src/core/rb_wire.h"
#include "src/core/replication_buffer.h"
#include "src/core/sync_agent.h"
#include "src/kernel/kernel.h"
#include "src/sim/check.h"

namespace remon {

namespace {

// Serialization bounds: a snapshot whose metadata claims more than these is
// rejected before any allocation happens (the frame CRC already passed, so this
// guards against a buggy or hostile leader, not line noise).
constexpr uint64_t kMaxSnapshotRbSize = 1ULL << 30;
constexpr uint32_t kMaxSnapshotRanks = 4096;

// kSnapshotBegin payload header (fixed 88 bytes since wire v3, then the variable
// sections: rank records, file map, epoll shadow, sync-log image).
constexpr size_t kBeginOffRbSize = 0;
constexpr size_t kBeginOffMaxRanks = 8;
constexpr size_t kBeginOffRankCount = 12;
constexpr size_t kBeginOffImageBytes = 16;
constexpr size_t kBeginOffImageCrc = 24;
constexpr size_t kBeginOffChunkCount = 28;
constexpr size_t kBeginOffLockstep = 32;
constexpr size_t kBeginOffFileMapLen = 40;
constexpr size_t kBeginOffEpollCount = 48;
constexpr size_t kBeginOffSyncLogSize = 56;
constexpr size_t kBeginOffSyncTail = 64;
constexpr size_t kBeginOffSyncCursor = 72;
constexpr size_t kBeginOffSyncImageLen = 80;
constexpr size_t kBeginHeaderSize = 88;

// kSnapshotDelta payload header (fixed 104 bytes, wire v5): the O(delta) analog
// of kSnapshotBegin. The variable sections that follow: rank records (cursor,
// seq, delta_from — 24 bytes each), dirty file-map pages (u32 page index + one
// page of bytes each), epoll shadow rows (dirty only), and the sync-log slice
// [sync_from, sync_tail) in seq order.
constexpr size_t kDeltaOffRbSize = 0;
constexpr size_t kDeltaOffMaxRanks = 8;
constexpr size_t kDeltaOffRankCount = 12;
constexpr size_t kDeltaOffImageBytes = 16;
constexpr size_t kDeltaOffImageCrc = 24;
constexpr size_t kDeltaOffChunkCount = 28;
constexpr size_t kDeltaOffLockstep = 32;
constexpr size_t kDeltaOffResetGen = 40;
constexpr size_t kDeltaOffFmPageCount = 48;
constexpr size_t kDeltaOffFmDirtyCount = 52;
constexpr size_t kDeltaOffFmCrc = 56;
constexpr size_t kDeltaOffEpollCount = 60;
constexpr size_t kDeltaOffSyncLogSize = 64;
constexpr size_t kDeltaOffSyncTail = 72;
constexpr size_t kDeltaOffSyncCursor = 80;
constexpr size_t kDeltaOffSyncFrom = 88;
constexpr size_t kDeltaOffSyncImageLen = 96;
constexpr size_t kDeltaHeaderSize = 104;
constexpr size_t kDeltaRankRecordSize = 24;
constexpr size_t kDeltaFmPageRecordSize = 4 + kPageSize;
// FileMap::Configure/Grow cap the map at 1024 pages; a delta claiming more is
// corrupt regardless of the replica's own geometry.
constexpr uint32_t kMaxSnapshotFileMapPages = 1024;

// kSnapshotChunk payload header.
constexpr size_t kChunkOffOffset = 0;
constexpr size_t kChunkOffLen = 8;
constexpr size_t kChunkOffReserved = 12;
constexpr size_t kChunkHeaderSize = 16;

constexpr size_t kBeginOffReserved = 52;

// kSnapshotEnd payload.
constexpr size_t kEndOffImageBytes = 0;
constexpr size_t kEndOffImageCrc = 8;
constexpr size_t kEndOffChunkCount = 12;
constexpr size_t kEndSize = 16;

void PutU32(std::vector<uint8_t>* out, size_t off, uint32_t v) {
  std::memcpy(out->data() + off, &v, 4);
}
void PutU64(std::vector<uint8_t>* out, size_t off, uint64_t v) {
  std::memcpy(out->data() + off, &v, 8);
}
uint32_t GetU32(const std::vector<uint8_t>& in, size_t off) {
  uint32_t v = 0;
  std::memcpy(&v, in.data() + off, 4);
  return v;
}
uint64_t GetU64(const std::vector<uint8_t>& in, size_t off) {
  uint64_t v = 0;
  std::memcpy(&v, in.data() + off, 8);
  return v;
}

uint32_t ImageU32(const std::vector<uint8_t>& image, uint64_t off) {
  uint32_t v = 0;
  std::memcpy(&v, image.data() + off, 4);
  return v;
}
uint64_t ImageU64(const std::vector<uint8_t>& image, uint64_t off) {
  uint64_t v = 0;
  std::memcpy(&v, image.data() + off, 8);
  return v;
}

bool PageIsZero(const uint8_t* p) {
  for (uint64_t i = 0; i < kPageSize; ++i) {
    if (p[i] != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace

// --- Sparse materialized-page images ----------------------------------------------

VmaImage CaptureVmaImage(const AddressSpace& mem, GuestAddr start, uint64_t length) {
  VmaImage image;
  image.length = PageAlignUp(length);
  uint8_t page[kPageSize];
  for (uint64_t off = 0; off < image.length; off += kPageSize) {
    // The materialization probe comes first: capture must record lazy holes as
    // holes, never force a terabyte region resident by reading it.
    if (!mem.PageMaterialized(start + off) ||
        !mem.ReadUnchecked(start + off, page, kPageSize).ok) {
      continue;
    }
    if (PageIsZero(page)) {
      continue;  // All-zero pages are indistinguishable from holes on restore.
    }
    if (!image.runs.empty()) {
      PageRun& last = image.runs.back();
      if (last.offset + last.bytes.size() == off) {
        last.bytes.insert(last.bytes.end(), page, page + kPageSize);
        continue;
      }
    }
    image.runs.push_back(PageRun{off, std::vector<uint8_t>(page, page + kPageSize)});
  }
  return image;
}

bool RestoreVmaImage(AddressSpace* mem, GuestAddr start, const VmaImage& image) {
  for (const PageRun& run : image.runs) {
    if (run.offset + run.bytes.size() > image.length ||
        !mem->WriteUnchecked(start + run.offset, run.bytes.data(), run.bytes.size()).ok) {
      return false;
    }
  }
  return true;
}

// --- The leader checkpoint ---------------------------------------------------------

ReplicaSnapshot CaptureLeaderSnapshot(IpMon* master, const Ghumvee* ghumvee,
                                      const SyncAgent* sync_master,
                                      uint64_t sync_read_cursor) {
  REMON_CHECK(master != nullptr && master->is_master());
  REMON_CHECK_MSG(master->rb().valid(), "cannot checkpoint before IP-MON initialized");
  // Quiescent flush point: every deferred batched commit publishes first, so the
  // image never hides a publication the local slaves have already been promised.
  // This also flushes the sync-log stream (IpMon::set_sync_log_flush), so every
  // record in the captured log image has left the coalescing buffer — the first
  // kSyncLog frame behind this checkpoint starts exactly at the captured tail.
  master->FlushRbBatches();

  const RbView& rb = master->rb();
  ReplicaSnapshot snap;
  snap.rb_size = rb.size();
  snap.max_ranks = rb.max_ranks();
  snap.rb_image = CaptureVmaImage(master->process()->mem(), rb.base(), rb.size());
  snap.cursors.reserve(static_cast<size_t>(snap.max_ranks));
  snap.seqs.reserve(static_cast<size_t>(snap.max_ranks));
  for (int r = 0; r < snap.max_ranks; ++r) {
    snap.cursors.push_back(master->rb_cursor(r));
    snap.seqs.push_back(master->rb_seq(r));
  }
  snap.lockstep_cursor = ghumvee != nullptr ? ghumvee->lockstep_rounds() : 0;
  snap.file_map.reserve(master->file_map()->size_bytes());
  for (const PageRef& fm_page : master->file_map()->pages()) {
    snap.file_map.insert(snap.file_map.end(), fm_page->bytes.begin(),
                         fm_page->bytes.end());
  }
  master->epoll_shadow().ForEach([&snap](int epfd, int fd, uint64_t data) {
    snap.epoll.push_back(EpollShadowTriple{epfd, fd, data});
  });
  // Hash-map enumeration order is not part of the checkpoint: sort so the wire
  // bytes are identical across standard-library implementations.
  std::sort(snap.epoll.begin(), snap.epoll.end(),
            [](const EpollShadowTriple& a, const EpollShadowTriple& b) {
              return a.epfd != b.epfd ? a.epfd < b.epfd : a.fd < b.fd;
            });
  if (sync_master != nullptr && sync_master->log_valid()) {
    snap.sync_log_size = sync_master->config().log_size;
    snap.sync_tail = sync_master->tail();
    snap.sync_read_cursor = sync_read_cursor;
    snap.sync_image = sync_master->CaptureLogImage();
  }
  return snap;
}

namespace {

// Captures only the pages a delta apply will read: the global header, each
// rank's header, and each rank's [from, cursor) entry window — with the same
// materialization probe, zero-page elision, and run coalescing as the full
// capture. Offsets stay absolute into the flat RB image, so the chunk codec
// and assembler are shared with the full path unchanged.
VmaImage CaptureDeltaImage(const AddressSpace& mem, const RbView& rb,
                           const std::vector<uint64_t>& from,
                           const std::vector<uint64_t>& cursors) {
  VmaImage image;
  image.length = PageAlignUp(rb.size());
  std::vector<bool> pick(image.length / kPageSize, false);
  auto mark = [&pick](uint64_t lo, uint64_t hi) {  // Byte range [lo, hi).
    for (uint64_t p = (lo & ~kPageMask) / kPageSize;
         p < pick.size() && p * kPageSize < hi; ++p) {
      pick[p] = true;
    }
  };
  mark(0, kRbGlobalHeaderSize);
  for (int r = 0; r < rb.max_ranks(); ++r) {
    size_t i = static_cast<size_t>(r);
    mark(rb.RankStart(r), rb.RankStart(r) + kRbRankHeaderSize);
    mark(from[i], cursors[i]);
  }
  uint8_t page[kPageSize];
  GuestAddr start = rb.base();
  for (uint64_t off = 0; off < image.length; off += kPageSize) {
    if (!pick[off / kPageSize] || !mem.PageMaterialized(start + off) ||
        !mem.ReadUnchecked(start + off, page, kPageSize).ok) {
      continue;
    }
    if (PageIsZero(page)) {
      continue;
    }
    if (!image.runs.empty()) {
      PageRun& last = image.runs.back();
      if (last.offset + last.bytes.size() == off) {
        last.bytes.insert(last.bytes.end(), page, page + kPageSize);
        continue;
      }
    }
    image.runs.push_back(PageRun{off, std::vector<uint8_t>(page, page + kPageSize)});
  }
  return image;
}

}  // namespace

ReplicaSnapshot CaptureLeaderDelta(IpMon* master, const Ghumvee* ghumvee,
                                   const SyncAgent* sync_master,
                                   uint64_t sync_read_cursor,
                                   const RbDeltaBasis& basis) {
  REMON_CHECK(master != nullptr && master->is_master());
  REMON_CHECK_MSG(master->rb().valid(), "cannot checkpoint before IP-MON initialized");
  // The caller (Remon::MakeReseedPayloads) decides delta-vs-full; a basis from a
  // different reset generation would make every offset in it meaningless.
  REMON_CHECK_MSG(basis.valid && basis.reset_generation == master->rb_resets(),
                  "delta capture needs a basis from the current reset generation");
  master->FlushRbBatches();

  const RbView& rb = master->rb();
  ReplicaSnapshot snap;
  snap.is_delta = true;
  snap.reset_generation = master->rb_resets();
  snap.rb_size = rb.size();
  snap.max_ranks = rb.max_ranks();
  snap.cursors.reserve(static_cast<size_t>(snap.max_ranks));
  snap.seqs.reserve(static_cast<size_t>(snap.max_ranks));
  snap.delta_from.reserve(static_cast<size_t>(snap.max_ranks));
  for (int r = 0; r < snap.max_ranks; ++r) {
    size_t i = static_cast<size_t>(r);
    uint64_t cursor = master->rb_cursor(r);
    snap.cursors.push_back(cursor);
    snap.seqs.push_back(master->rb_seq(r));
    // Resume at the replacement's highest acked entry (one entry of idempotent
    // overlap); an empty or implausible horizon degrades that rank to full.
    uint64_t from = i < basis.from_off.size() ? basis.from_off[i] : 0;
    if (from < rb.RankDataStart(r) || from > cursor) {
      from = rb.RankDataStart(r);
    }
    snap.delta_from.push_back(from);
  }
  snap.rb_image =
      CaptureDeltaImage(master->process()->mem(), rb, snap.delta_from, snap.cursors);
  snap.lockstep_cursor = ghumvee != nullptr ? ghumvee->lockstep_rounds() : 0;

  // File map: dirty pages since the basis, plus a whole-map CRC so the pages the
  // delta does NOT carry are still covered by the join's divergence check.
  const FileMap* fm = master->file_map();
  snap.file_map_page_count = static_cast<uint32_t>(fm->pages().size());
  uint32_t fm_crc = 0;
  for (const PageRef& fm_page : fm->pages()) {
    fm_crc = Crc32(fm_page->bytes.data(), kPageSize, fm_crc);
  }
  snap.file_map_crc = fm_crc;
  for (size_t p = 0; p < fm->pages().size(); ++p) {
    if (fm->page_version(p) > basis.fm_version) {
      snap.file_map_pages.push_back(static_cast<uint32_t>(p));
      snap.file_map.insert(snap.file_map.end(), fm->pages()[p]->bytes.begin(),
                           fm->pages()[p]->bytes.end());
    }
  }

  master->epoll_shadow().ForEachSince(
      basis.epoll_version, [&snap](int epfd, int fd, uint64_t data) {
        snap.epoll.push_back(EpollShadowTriple{epfd, fd, data});
      });
  std::sort(snap.epoll.begin(), snap.epoll.end(),
            [](const EpollShadowTriple& a, const EpollShadowTriple& b) {
              return a.epfd != b.epfd ? a.epfd < b.epfd : a.fd < b.fd;
            });

  if (sync_master != nullptr && sync_master->log_valid()) {
    snap.sync_log_size = sync_master->config().log_size;
    snap.sync_tail = sync_master->tail();
    snap.sync_read_cursor = sync_read_cursor;
    snap.sync_from = sync_read_cursor;
    // The wrap gate froze this replica's cursor at death, so the un-replayed
    // suffix still fits the circular log; the caller verified it.
    REMON_CHECK_MSG(snap.sync_from <= snap.sync_tail &&
                        snap.sync_tail - snap.sync_from <= sync_master->capacity(),
                    "delta capture after the sync log wrapped past the cursor");
    snap.sync_image = sync_master->CaptureLogDelta(snap.sync_from);
  }
  return snap;
}

// --- Wire payloads -----------------------------------------------------------------

SnapshotPayloads SerializeSnapshot(const ReplicaSnapshot& snap) {
  SnapshotPayloads out;

  // Chunks first: Begin carries their count and chained CRC.
  uint32_t crc = 0;
  for (const PageRun& run : snap.rb_image.runs) {
    for (uint64_t pos = 0; pos < run.bytes.size(); pos += kSnapshotChunkBytes) {
      uint64_t len = std::min<uint64_t>(kSnapshotChunkBytes, run.bytes.size() - pos);
      std::vector<uint8_t> chunk(kChunkHeaderSize + len, 0);
      PutU64(&chunk, kChunkOffOffset, run.offset + pos);
      PutU32(&chunk, kChunkOffLen, static_cast<uint32_t>(len));
      std::memcpy(chunk.data() + kChunkHeaderSize, run.bytes.data() + pos, len);
      crc = Crc32(chunk.data(), chunk.size(), crc);
      out.chunks.push_back(std::move(chunk));
    }
  }
  uint64_t image_bytes = snap.rb_image.run_bytes();
  uint32_t chunk_count = static_cast<uint32_t>(out.chunks.size());
  size_t rank_count = snap.cursors.size();

  if (snap.is_delta) {
    out.delta = true;
    size_t fm_dirty = snap.file_map_pages.size();
    out.begin.assign(kDeltaHeaderSize + rank_count * kDeltaRankRecordSize +
                         fm_dirty * kDeltaFmPageRecordSize + snap.epoll.size() * 16 +
                         snap.sync_image.size(),
                     0);
    PutU64(&out.begin, kDeltaOffRbSize, snap.rb_size);
    PutU32(&out.begin, kDeltaOffMaxRanks, static_cast<uint32_t>(snap.max_ranks));
    PutU32(&out.begin, kDeltaOffRankCount, static_cast<uint32_t>(rank_count));
    PutU64(&out.begin, kDeltaOffImageBytes, image_bytes);
    PutU32(&out.begin, kDeltaOffImageCrc, crc);
    PutU32(&out.begin, kDeltaOffChunkCount, chunk_count);
    PutU64(&out.begin, kDeltaOffLockstep, snap.lockstep_cursor);
    PutU64(&out.begin, kDeltaOffResetGen, snap.reset_generation);
    PutU32(&out.begin, kDeltaOffFmPageCount, snap.file_map_page_count);
    PutU32(&out.begin, kDeltaOffFmDirtyCount, static_cast<uint32_t>(fm_dirty));
    PutU32(&out.begin, kDeltaOffFmCrc, snap.file_map_crc);
    PutU32(&out.begin, kDeltaOffEpollCount, static_cast<uint32_t>(snap.epoll.size()));
    PutU64(&out.begin, kDeltaOffSyncLogSize, snap.sync_log_size);
    PutU64(&out.begin, kDeltaOffSyncTail, snap.sync_tail);
    PutU64(&out.begin, kDeltaOffSyncCursor, snap.sync_read_cursor);
    PutU64(&out.begin, kDeltaOffSyncFrom, snap.sync_from);
    PutU64(&out.begin, kDeltaOffSyncImageLen, snap.sync_image.size());
    size_t dpos = kDeltaHeaderSize;
    for (size_t r = 0; r < rank_count; ++r) {
      PutU64(&out.begin, dpos, snap.cursors[r]);
      PutU64(&out.begin, dpos + 8, snap.seqs[r]);
      PutU64(&out.begin, dpos + 16, snap.delta_from[r]);
      dpos += kDeltaRankRecordSize;
    }
    for (size_t i = 0; i < fm_dirty; ++i) {
      PutU32(&out.begin, dpos, snap.file_map_pages[i]);
      std::memcpy(out.begin.data() + dpos + 4, snap.file_map.data() + i * kPageSize,
                  kPageSize);
      dpos += kDeltaFmPageRecordSize;
    }
    for (const EpollShadowTriple& t : snap.epoll) {
      PutU32(&out.begin, dpos, static_cast<uint32_t>(t.epfd));
      PutU32(&out.begin, dpos + 4, static_cast<uint32_t>(t.fd));
      PutU64(&out.begin, dpos + 8, t.data);
      dpos += 16;
    }
    if (!snap.sync_image.empty()) {
      std::memcpy(out.begin.data() + dpos, snap.sync_image.data(),
                  snap.sync_image.size());
    }
    out.end.assign(kEndSize, 0);
    PutU64(&out.end, kEndOffImageBytes, image_bytes);
    PutU32(&out.end, kEndOffImageCrc, crc);
    PutU32(&out.end, kEndOffChunkCount, chunk_count);
    return out;
  }

  out.begin.assign(kBeginHeaderSize + rank_count * 16 + snap.file_map.size() +
                       snap.epoll.size() * 16 + snap.sync_image.size(),
                   0);
  PutU64(&out.begin, kBeginOffRbSize, snap.rb_size);
  PutU32(&out.begin, kBeginOffMaxRanks, static_cast<uint32_t>(snap.max_ranks));
  PutU32(&out.begin, kBeginOffRankCount, static_cast<uint32_t>(rank_count));
  PutU64(&out.begin, kBeginOffImageBytes, image_bytes);
  PutU32(&out.begin, kBeginOffImageCrc, crc);
  PutU32(&out.begin, kBeginOffChunkCount, chunk_count);
  PutU64(&out.begin, kBeginOffLockstep, snap.lockstep_cursor);
  PutU64(&out.begin, kBeginOffFileMapLen, snap.file_map.size());
  PutU32(&out.begin, kBeginOffEpollCount, static_cast<uint32_t>(snap.epoll.size()));
  PutU64(&out.begin, kBeginOffSyncLogSize, snap.sync_log_size);
  PutU64(&out.begin, kBeginOffSyncTail, snap.sync_tail);
  PutU64(&out.begin, kBeginOffSyncCursor, snap.sync_read_cursor);
  PutU64(&out.begin, kBeginOffSyncImageLen, snap.sync_image.size());
  size_t pos = kBeginHeaderSize;
  for (size_t r = 0; r < rank_count; ++r) {
    PutU64(&out.begin, pos, snap.cursors[r]);
    PutU64(&out.begin, pos + 8, snap.seqs[r]);
    pos += 16;
  }
  std::memcpy(out.begin.data() + pos, snap.file_map.data(), snap.file_map.size());
  pos += snap.file_map.size();
  for (const EpollShadowTriple& t : snap.epoll) {
    PutU32(&out.begin, pos, static_cast<uint32_t>(t.epfd));
    PutU32(&out.begin, pos + 4, static_cast<uint32_t>(t.fd));
    PutU64(&out.begin, pos + 8, t.data);
    pos += 16;
  }
  if (!snap.sync_image.empty()) {
    std::memcpy(out.begin.data() + pos, snap.sync_image.data(), snap.sync_image.size());
    pos += snap.sync_image.size();
  }

  out.end.assign(kEndSize, 0);
  PutU64(&out.end, kEndOffImageBytes, image_bytes);
  PutU32(&out.end, kEndOffImageCrc, crc);
  PutU32(&out.end, kEndOffChunkCount, chunk_count);
  return out;
}

bool SnapshotAssembler::Fail(const char* why) {
  state_ = State::kFailed;
  error_ = why;
  return false;
}

void SnapshotAssembler::Reset() {
  state_ = State::kIdle;
  error_.clear();
  snap_ = ReplicaSnapshot{};
  image_.clear();
  expect_chunks_ = expect_bytes_ = chunks_applied_ = bytes_applied_ = 0;
  expect_crc_ = running_crc_ = 0;
}

bool SnapshotAssembler::Begin(const std::vector<uint8_t>& payload) {
  if (state_ != State::kIdle) {
    return Fail("snapshot begin out of protocol");
  }
  if (payload.size() < kBeginHeaderSize) {
    return Fail("snapshot begin payload truncated");
  }
  uint64_t rb_size = GetU64(payload, kBeginOffRbSize);
  uint32_t max_ranks = GetU32(payload, kBeginOffMaxRanks);
  uint32_t rank_count = GetU32(payload, kBeginOffRankCount);
  uint64_t file_map_len = GetU64(payload, kBeginOffFileMapLen);
  uint32_t epoll_count = GetU32(payload, kBeginOffEpollCount);
  if (rb_size == 0 || rb_size > kMaxSnapshotRbSize || (rb_size & kPageMask) != 0 ||
      max_ranks == 0 || max_ranks > kMaxSnapshotRanks || rank_count != max_ranks ||
      // The file map spans a whole number of pages (multi-page since the fleet
      // work raised the FD ceiling); bound it like the RB.
      file_map_len == 0 || file_map_len > kMaxSnapshotRbSize ||
      (file_map_len & kPageMask) != 0 ||
      // The spec says MUST-be-zero; tolerating garbage here would make the field
      // unusable for a future revision.
      GetU32(payload, kBeginOffReserved) != 0) {
    return Fail("snapshot begin metadata out of bounds");
  }
  uint64_t sync_log_size = GetU64(payload, kBeginOffSyncLogSize);
  uint64_t sync_tail = GetU64(payload, kBeginOffSyncTail);
  uint64_t sync_cursor = GetU64(payload, kBeginOffSyncCursor);
  uint64_t sync_image_len = GetU64(payload, kBeginOffSyncImageLen);
  if (sync_log_size == 0) {
    // No sync section: every sync field must be zero (an image without a log to
    // describe it is structurally corrupt).
    if (sync_tail != 0 || sync_cursor != 0 || sync_image_len != 0) {
      return Fail("snapshot sync section inconsistent with zero log size");
    }
  } else {
    if (sync_log_size <= kSyncLogOffEntries || sync_log_size > kMaxSnapshotRbSize) {
      return Fail("snapshot sync log size out of bounds");
    }
    uint64_t cap = (sync_log_size - kSyncLogOffEntries) / kSyncLogEntrySize;
    uint64_t occupied = std::min(sync_tail, cap);
    if (cap == 0 || sync_image_len != occupied * kSyncLogEntrySize ||
        sync_cursor > sync_tail) {
      return Fail("snapshot sync section out of bounds");
    }
  }
  uint64_t variable = static_cast<uint64_t>(rank_count) * 16 + file_map_len +
                      static_cast<uint64_t>(epoll_count) * 16 + sync_image_len;
  if (payload.size() != kBeginHeaderSize + variable) {
    return Fail("snapshot begin payload size mismatch");
  }

  snap_.rb_size = rb_size;
  snap_.max_ranks = static_cast<int>(max_ranks);
  snap_.lockstep_cursor = GetU64(payload, kBeginOffLockstep);
  snap_.sync_log_size = sync_log_size;
  snap_.sync_tail = sync_tail;
  snap_.sync_read_cursor = sync_cursor;
  expect_bytes_ = GetU64(payload, kBeginOffImageBytes);
  expect_crc_ = GetU32(payload, kBeginOffImageCrc);
  expect_chunks_ = GetU32(payload, kBeginOffChunkCount);
  if (expect_bytes_ > rb_size) {
    return Fail("snapshot image larger than the RB it describes");
  }
  size_t pos = kBeginHeaderSize;
  for (uint32_t r = 0; r < rank_count; ++r) {
    snap_.cursors.push_back(GetU64(payload, pos));
    snap_.seqs.push_back(GetU64(payload, pos + 8));
    pos += 16;
  }
  snap_.file_map.assign(payload.begin() + static_cast<long>(pos),
                        payload.begin() + static_cast<long>(pos + file_map_len));
  pos += file_map_len;
  for (uint32_t i = 0; i < epoll_count; ++i) {
    EpollShadowTriple t;
    t.epfd = static_cast<int32_t>(GetU32(payload, pos));
    t.fd = static_cast<int32_t>(GetU32(payload, pos + 4));
    t.data = GetU64(payload, pos + 8);
    snap_.epoll.push_back(t);
    pos += 16;
  }
  snap_.sync_image.assign(payload.begin() + static_cast<long>(pos),
                          payload.begin() + static_cast<long>(pos + sync_image_len));
  image_.assign(rb_size, 0);
  state_ = State::kAssembling;
  return true;
}

bool SnapshotAssembler::BeginDelta(const std::vector<uint8_t>& payload) {
  if (state_ != State::kIdle) {
    return Fail("snapshot begin out of protocol");
  }
  if (payload.size() < kDeltaHeaderSize) {
    return Fail("snapshot delta payload truncated");
  }
  uint64_t rb_size = GetU64(payload, kDeltaOffRbSize);
  uint32_t max_ranks = GetU32(payload, kDeltaOffMaxRanks);
  uint32_t rank_count = GetU32(payload, kDeltaOffRankCount);
  uint32_t fm_page_count = GetU32(payload, kDeltaOffFmPageCount);
  uint32_t fm_dirty_count = GetU32(payload, kDeltaOffFmDirtyCount);
  uint32_t epoll_count = GetU32(payload, kDeltaOffEpollCount);
  if (rb_size == 0 || rb_size > kMaxSnapshotRbSize || (rb_size & kPageMask) != 0 ||
      max_ranks == 0 || max_ranks > kMaxSnapshotRanks || rank_count != max_ranks ||
      fm_page_count == 0 || fm_page_count > kMaxSnapshotFileMapPages ||
      fm_dirty_count > fm_page_count) {
    return Fail("snapshot delta metadata out of bounds");
  }
  uint64_t sync_log_size = GetU64(payload, kDeltaOffSyncLogSize);
  uint64_t sync_tail = GetU64(payload, kDeltaOffSyncTail);
  uint64_t sync_cursor = GetU64(payload, kDeltaOffSyncCursor);
  uint64_t sync_from = GetU64(payload, kDeltaOffSyncFrom);
  uint64_t sync_image_len = GetU64(payload, kDeltaOffSyncImageLen);
  if (sync_log_size == 0) {
    if (sync_tail != 0 || sync_cursor != 0 || sync_from != 0 || sync_image_len != 0) {
      return Fail("snapshot sync section inconsistent with zero log size");
    }
  } else {
    if (sync_log_size <= kSyncLogOffEntries || sync_log_size > kMaxSnapshotRbSize) {
      return Fail("snapshot sync log size out of bounds");
    }
    uint64_t cap = (sync_log_size - kSyncLogOffEntries) / kSyncLogEntrySize;
    if (cap == 0 || sync_from > sync_cursor || sync_cursor > sync_tail) {
      return Fail("snapshot sync section out of bounds");
    }
    // The lap guard: a slice longer than the log means the leader wrapped past
    // the replica's cursor after cutting the basis — the delta is stale and the
    // join must be refused (the leader falls back to a full checkpoint).
    if (sync_tail - sync_from > cap) {
      return Fail("snapshot delta sync slice wrapped past the replica cursor");
    }
    if (sync_image_len != (sync_tail - sync_from) * kSyncLogEntrySize) {
      return Fail("snapshot sync section out of bounds");
    }
  }
  uint64_t variable = static_cast<uint64_t>(rank_count) * kDeltaRankRecordSize +
                      static_cast<uint64_t>(fm_dirty_count) * kDeltaFmPageRecordSize +
                      static_cast<uint64_t>(epoll_count) * 16 + sync_image_len;
  if (payload.size() != kDeltaHeaderSize + variable) {
    return Fail("snapshot delta payload size mismatch");
  }

  snap_.is_delta = true;
  snap_.rb_size = rb_size;
  snap_.max_ranks = static_cast<int>(max_ranks);
  snap_.lockstep_cursor = GetU64(payload, kDeltaOffLockstep);
  snap_.reset_generation = GetU64(payload, kDeltaOffResetGen);
  snap_.file_map_page_count = fm_page_count;
  snap_.file_map_crc = GetU32(payload, kDeltaOffFmCrc);
  snap_.sync_log_size = sync_log_size;
  snap_.sync_tail = sync_tail;
  snap_.sync_read_cursor = sync_cursor;
  snap_.sync_from = sync_from;
  expect_bytes_ = GetU64(payload, kDeltaOffImageBytes);
  expect_crc_ = GetU32(payload, kDeltaOffImageCrc);
  expect_chunks_ = GetU32(payload, kDeltaOffChunkCount);
  if (expect_bytes_ > rb_size) {
    return Fail("snapshot image larger than the RB it describes");
  }
  size_t pos = kDeltaHeaderSize;
  for (uint32_t r = 0; r < rank_count; ++r) {
    snap_.cursors.push_back(GetU64(payload, pos));
    snap_.seqs.push_back(GetU64(payload, pos + 8));
    snap_.delta_from.push_back(GetU64(payload, pos + 16));
    pos += kDeltaRankRecordSize;
  }
  for (uint32_t i = 0; i < fm_dirty_count; ++i) {
    uint32_t page_idx = GetU32(payload, pos);
    // Strictly increasing indices inside the map: deterministic wire bytes and
    // no double-written page under a valid CRC.
    if (page_idx >= fm_page_count ||
        (!snap_.file_map_pages.empty() && page_idx <= snap_.file_map_pages.back())) {
      return Fail("snapshot delta file-map page index out of order");
    }
    snap_.file_map_pages.push_back(page_idx);
    snap_.file_map.insert(snap_.file_map.end(),
                          payload.begin() + static_cast<long>(pos + 4),
                          payload.begin() + static_cast<long>(pos + 4 + kPageSize));
    pos += kDeltaFmPageRecordSize;
  }
  for (uint32_t i = 0; i < epoll_count; ++i) {
    EpollShadowTriple t;
    t.epfd = static_cast<int32_t>(GetU32(payload, pos));
    t.fd = static_cast<int32_t>(GetU32(payload, pos + 4));
    t.data = GetU64(payload, pos + 8);
    snap_.epoll.push_back(t);
    pos += 16;
  }
  snap_.sync_image.assign(payload.begin() + static_cast<long>(pos),
                          payload.begin() + static_cast<long>(pos + sync_image_len));
  image_.assign(rb_size, 0);
  state_ = State::kAssembling;
  return true;
}

bool SnapshotAssembler::AddChunk(const std::vector<uint8_t>& payload) {
  if (state_ != State::kAssembling) {
    return Fail("snapshot chunk out of protocol");
  }
  if (payload.size() < kChunkHeaderSize) {
    return Fail("snapshot chunk payload truncated");
  }
  uint64_t offset = GetU64(payload, kChunkOffOffset);
  uint32_t len = GetU32(payload, kChunkOffLen);
  if (len != payload.size() - kChunkHeaderSize || len == 0 ||
      len > kSnapshotChunkBytes || offset > image_.size() ||
      len > image_.size() - offset || GetU32(payload, kChunkOffReserved) != 0) {
    return Fail("snapshot chunk out of bounds");
  }
  if (chunks_applied_ >= expect_chunks_) {
    return Fail("more snapshot chunks than announced");
  }
  running_crc_ = Crc32(payload.data(), payload.size(), running_crc_);
  std::memcpy(image_.data() + offset, payload.data() + kChunkHeaderSize, len);
  ++chunks_applied_;
  bytes_applied_ += len;
  return true;
}

bool SnapshotAssembler::End(const std::vector<uint8_t>& payload) {
  if (state_ != State::kAssembling) {
    return Fail("snapshot end out of protocol");
  }
  if (payload.size() != kEndSize) {
    return Fail("snapshot end payload malformed");
  }
  if (GetU64(payload, kEndOffImageBytes) != expect_bytes_ ||
      GetU32(payload, kEndOffChunkCount) != expect_chunks_ ||
      GetU32(payload, kEndOffImageCrc) != expect_crc_) {
    return Fail("snapshot end disagrees with begin");
  }
  if (chunks_applied_ != expect_chunks_ || bytes_applied_ != expect_bytes_) {
    return Fail("snapshot truncated: chunk or byte count short of announced");
  }
  if (running_crc_ != expect_crc_) {
    return Fail("snapshot image CRC mismatch");
  }
  state_ = State::kComplete;
  return true;
}

// --- Mirror restoration ------------------------------------------------------------

namespace {

void WakeEntryQueue(Kernel* kernel, IpMon* mon, const RbView& rb, uint64_t entry_off) {
  uint64_t off_in_page = 0;
  Page* frame = mon->process()->mem().ResolveFrame(rb.AddrOf(entry_off + kRbOffState),
                                                   &off_in_page);
  if (frame != nullptr) {
    kernel->futex().QueueFor(frame, off_in_page).Wake();
  }
}

SnapshotApplyResult ApplyFail(const char* why) {
  SnapshotApplyResult r;
  r.ok = false;
  r.error = why;
  return r;
}

}  // namespace

SnapshotApplyResult ApplySnapshotToMirror(Kernel* kernel, IpMon* mon,
                                          SyncAgent* sync_agent,
                                          const ReplicaSnapshot& snap,
                                          const std::vector<uint8_t>& image) {
  RbView rb = mon->rb();
  if (!rb.valid()) {
    return ApplyFail("replica RB mirror not initialized");
  }
  if (snap.rb_size != rb.size() || snap.max_ranks != rb.max_ranks() ||
      image.size() != rb.size() ||
      snap.cursors.size() != static_cast<size_t>(snap.max_ranks) ||
      (snap.is_delta &&
       snap.delta_from.size() != static_cast<size_t>(snap.max_ranks))) {
    return ApplyFail("snapshot geometry does not match the replica RB");
  }
  // Delta lap guard: every offset in the delta is relative to one RB reset
  // generation. A reset between the basis acks and this join rewrote the
  // sub-buffers wholesale, so the slice no longer describes this mirror.
  if (snap.is_delta && snap.reset_generation != mon->rb_resets()) {
    return ApplyFail("delta basis from a different RB reset generation");
  }
  // File-map cross-check: the FD metadata is monitor control-plane state every
  // replica derives from the same monitored history; a byte diverging means this
  // replica's stream is not the leader's and the join must be refused.
  if (snap.is_delta) {
    // Delta mode carries only the dirty pages; the whole-map CRC extends the
    // divergence check over the pages the slice omitted.
    const FileMap* fm = mon->file_map();
    if (snap.file_map_page_count != fm->pages().size()) {
      return ApplyFail("file map geometry diverged from the leader checkpoint");
    }
    if (snap.file_map.size() != snap.file_map_pages.size() * kPageSize) {
      return ApplyFail("file map diverged from the leader checkpoint");
    }
    for (size_t i = 0; i < snap.file_map_pages.size(); ++i) {
      const PageRef& fm_page = fm->pages()[snap.file_map_pages[i]];
      if (!std::equal(fm_page->bytes.begin(), fm_page->bytes.end(),
                      snap.file_map.begin() + static_cast<long>(i * kPageSize))) {
        return ApplyFail("file map diverged from the leader checkpoint");
      }
    }
    uint32_t fm_crc = 0;
    for (const PageRef& fm_page : fm->pages()) {
      fm_crc = Crc32(fm_page->bytes.data(), kPageSize, fm_crc);
    }
    if (fm_crc != snap.file_map_crc) {
      return ApplyFail("file map diverged from the leader checkpoint");
    }
  } else {
    if (snap.file_map.size() != mon->file_map()->size_bytes()) {
      return ApplyFail("file map diverged from the leader checkpoint");
    }
    size_t fm_off = 0;
    for (const PageRef& fm_page : mon->file_map()->pages()) {
      if (!std::equal(fm_page->bytes.begin(), fm_page->bytes.end(),
                      snap.file_map.begin() + static_cast<long>(fm_off))) {
        return ApplyFail("file map diverged from the leader checkpoint");
      }
      fm_off += fm_page->bytes.size();
    }
  }
  // Sync-agent log (v3): the checkpoint and the replica must agree on whether a
  // record/replay agent runs at all, and the log restore's own validation
  // (geometry, replay cursor, per-slot divergence) gates the join like the file
  // map does. ApplyLogSnapshot mutates only after every check passed.
  bool replica_has_sync = sync_agent != nullptr && sync_agent->log_valid();
  if (snap.sync_log_size != 0 && !replica_has_sync) {
    return ApplyFail("snapshot carries a sync log the replica does not replay");
  }
  if (snap.sync_log_size == 0 && replica_has_sync) {
    return ApplyFail("snapshot lacks the sync log this replica replays");
  }

  SnapshotApplyResult result;
  result.ok = true;
  if (replica_has_sync) {
    const char* sync_err =
        snap.is_delta
            ? sync_agent->ApplyLogDelta(snap.sync_log_size, snap.sync_tail,
                                        snap.sync_from, snap.sync_read_cursor,
                                        snap.sync_image)
            : sync_agent->ApplyLogSnapshot(snap.sync_log_size, snap.sync_tail,
                                           snap.sync_read_cursor, snap.sync_image);
    if (sync_err != nullptr) {
      return ApplyFail(sync_err);
    }
    result.sync_slots_restored = snap.sync_image.size() / kSyncLogEntrySize;
  }
  // Epoll-shadow coverage: keys the replica has not recorded yet are legitimate
  // consumer lag (its epoll_ctl replay may trail the leader), so they are counted,
  // not fatal; the divergence checks catch real mismatches at the next entry.
  for (const EpollShadowTriple& t : snap.epoll) {
    uint64_t local_data = 0;
    if (!mon->LookupEpollData(t.epfd, t.fd, &local_data)) {
      ++result.epoll_lag;
    }
  }

  // Global header (signals-pending flag, generation) exactly as the leader saw it.
  rb.WriteBytes(0, image.data(), kRbGlobalHeaderSize);

  for (int r = 0; r < snap.max_ranks; ++r) {
    uint64_t data_start = rb.RankDataStart(r);
    uint64_t data_end = rb.RankDataEnd(r);
    uint64_t cursor = snap.cursors[static_cast<size_t>(r)];
    if (cursor < data_start || cursor > data_end) {
      return ApplyFail("snapshot cursor outside the rank sub-buffer");
    }
    rb.WriteBytes(rb.RankStart(r), image.data() + rb.RankStart(r), kRbRankHeaderSize);

    // Replay the published prefix with the live-path discipline: body first (the
    // mirror's own state and waiter words preserved), state word flipped last and
    // only forward, one wake per entry. A delta resumes the walk at the
    // replacement's highest acked entry instead of the rank data start — one
    // entry of overlap, idempotent under the forward-only flip.
    uint64_t off = data_start;
    if (snap.is_delta) {
      uint64_t df = snap.delta_from[static_cast<size_t>(r)];
      if (df == 0) {
        df = data_start;
      }
      if (df < data_start || df > cursor) {
        return ApplyFail("delta resume offset outside the published prefix");
      }
      off = df;
    }
    while (off + kRbEntryHeaderSize <= cursor) {
      uint32_t state = ImageU32(image, off + kRbOffState);
      if (state == kRbEmpty) {
        break;  // In-flight tail entry: the next data frame completes it.
      }
      uint64_t total = ImageU64(image, off + kRbOffTotalSize);
      if (state > kRbResultsReady || total < kRbEntryHeaderSize || (total & 7) != 0 ||
          total > cursor - off) {
        return ApplyFail("snapshot image has a malformed entry chain");
      }
      rb.WriteBytes(off + kRbOffSysno, image.data() + off + kRbOffSysno,
                    total - kRbOffSysno);
      if (state > rb.ReadU32(off + kRbOffState)) {
        rb.WriteU32(off + kRbOffState, state);
      }
      WakeEntryQueue(kernel, mon, rb, off);
      ++result.entries_restored;
      off += total;
    }

    // Delta: within one reset generation the mirror's bytes past the leader
    // cursor are already the leader's zeros (both sides were scrubbed by the
    // same reset round), so re-zeroing would only race a consumer parked on the
    // resume entry. Just wake it so it re-examines the restored world.
    if (snap.is_delta) {
      if (off + kRbEntryHeaderSize <= data_end) {
        WakeEntryQueue(kernel, mon, rb, off);
      }
      continue;
    }

    // The stale tail: everything beyond the leader's published prefix must read
    // as the leader's RB does (zeros — the region is zeroed at creation and at
    // every globally synchronized reset). The resume entry's state word is reset
    // from the image and its waiter word preserved: a consumer parked there keeps
    // its registration and simply finds the entry not published yet.
    if (off + 8 <= data_end) {
      rb.WriteU32(off + kRbOffState, ImageU32(image, off + kRbOffState));
      if (off + 8 < data_end) {
        rb.Zero(off + 8, data_end - off - 8);
      }
      WakeEntryQueue(kernel, mon, rb, off);
    } else if (off < data_end) {
      rb.Zero(off, data_end - off);  // Sub-entry-header residue: no consumer state.
    }
  }
  return result;
}

}  // namespace remon

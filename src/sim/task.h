// Coroutine task types for guest programs and monitor loops.
//
// Guest programs (workloads) and the GHUMVEE monitor loop are written as C++20
// coroutines. A GuestTask<T> is a *lazy* task: it starts suspended and runs when
// resumed (for a root task) or awaited (for a nested call). When a task completes it
// symmetrically transfers control back to its awaiter; the root task instead fires a
// completion hook so the owning Thread can run exit processing.
//
// Suspension points come from awaitables defined by the kernel (system calls, compute
// bursts, ptrace event waits). Those awaitables capture the *leaf* coroutine handle;
// resuming it unwinds naturally through any nested GuestTask frames.

#ifndef SRC_SIM_TASK_H_
#define SRC_SIM_TASK_H_

#include <coroutine>
#include <cstdlib>
#include <utility>

#include "src/sim/check.h"

namespace remon {

class GuestPromiseBase {
 public:
  // Awaiter waiting on this task (nullptr for a root task).
  std::coroutine_handle<> continuation;
  // Completion hook for root tasks.
  void (*root_done_fn)(void*) = nullptr;
  void* root_done_arg = nullptr;

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) noexcept {
      GuestPromiseBase& p = h.promise();
      if (p.continuation) {
        return p.continuation;
      }
      if (p.root_done_fn != nullptr) {
        // Root task finished: notify the owner. The hook must not destroy the
        // coroutine frame synchronously; owners defer reaping to the event loop.
        p.root_done_fn(p.root_done_arg);
      }
      return std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept {
    // Library policy: no exceptions. Any escape is a programming error.
    std::abort();
  }
};

template <typename T = void>
class [[nodiscard]] GuestTask {
 public:
  struct promise_type : GuestPromiseBase {
    T value{};
    GuestTask get_return_object() {
      return GuestTask(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T v) { value = std::move(v); }
  };
  using Handle = std::coroutine_handle<promise_type>;

  GuestTask() = default;
  explicit GuestTask(Handle h) : handle_(h) {}
  GuestTask(GuestTask&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  GuestTask& operator=(GuestTask&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  GuestTask(const GuestTask&) = delete;
  GuestTask& operator=(const GuestTask&) = delete;
  ~GuestTask() { Destroy(); }

  Handle handle() const { return handle_; }
  bool valid() const { return handle_ != nullptr; }
  bool done() const { return handle_ && handle_.done(); }

  // Installs the root-completion hook and releases frame ownership to the owner,
  // which becomes responsible for destroying the handle after completion.
  Handle ReleaseAsRoot(void (*fn)(void*), void* arg) {
    REMON_CHECK(handle_);
    handle_.promise().root_done_fn = fn;
    handle_.promise().root_done_arg = arg;
    return std::exchange(handle_, nullptr);
  }

  // Awaiting a GuestTask starts it (symmetric transfer) and resumes the awaiter on
  // completion, yielding the returned value.
  auto operator co_await() && noexcept {
    struct Awaiter {
      Handle child;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiting) noexcept {
        child.promise().continuation = awaiting;
        return child;
      }
      T await_resume() noexcept { return std::move(child.promise().value); }
    };
    return Awaiter{handle_};
  }

 private:
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }
  Handle handle_ = nullptr;
};

template <>
class [[nodiscard]] GuestTask<void> {
 public:
  struct promise_type : GuestPromiseBase {
    GuestTask get_return_object() {
      return GuestTask(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
  };
  using Handle = std::coroutine_handle<promise_type>;

  GuestTask() = default;
  explicit GuestTask(Handle h) : handle_(h) {}
  GuestTask(GuestTask&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  GuestTask& operator=(GuestTask&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  GuestTask(const GuestTask&) = delete;
  GuestTask& operator=(const GuestTask&) = delete;
  ~GuestTask() { Destroy(); }

  Handle handle() const { return handle_; }
  bool valid() const { return handle_ != nullptr; }
  bool done() const { return handle_ && handle_.done(); }

  Handle ReleaseAsRoot(void (*fn)(void*), void* arg) {
    REMON_CHECK(handle_);
    handle_.promise().root_done_fn = fn;
    handle_.promise().root_done_arg = arg;
    return std::exchange(handle_, nullptr);
  }

  auto operator co_await() && noexcept {
    struct Awaiter {
      Handle child;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiting) noexcept {
        child.promise().continuation = awaiting;
        return child;
      }
      void await_resume() noexcept {}
    };
    return Awaiter{handle_};
  }

 private:
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }
  Handle handle_ = nullptr;
};

}  // namespace remon

#endif  // SRC_SIM_TASK_H_

// Small-buffer-only move-only callable.
//
// InlineFunction<R(Args...), Cap> is the event loop's replacement for
// std::function on the hot path: the callable is stored in `Cap` bytes of inline
// storage and there is NO heap fallback — a closure that does not fit fails to
// compile (static_assert), which keeps every ScheduleAfter/RunOn* call site
// honest about its capture size. Unlike std::function it is move-only, so
// callbacks may own move-only state (other InlineFunctions, pooled contexts).
//
// Two function pointers erase the type: one invokes, one relocates/destroys.
// Trivially copyable + trivially destructible callables (the common pointer-pack
// closures) get a null manager and relocate with memcpy, so moving a queued
// callback is cheap. See docs/ARCHITECTURE.md, "Coroutine runtime & scheduler
// fast path".

#ifndef SRC_SIM_INLINE_FN_H_
#define SRC_SIM_INLINE_FN_H_

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace remon {

template <typename Sig, std::size_t Cap>
class InlineFunction;

template <typename R, typename... Args, std::size_t Cap>
class InlineFunction<R(Args...), Cap> {
 public:
  InlineFunction() = default;
  InlineFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, InlineFunction> &&
                !std::is_same_v<D, std::nullptr_t> &&
                std::is_invocable_r_v<R, D&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    static_assert(sizeof(D) <= Cap,
                  "closure exceeds InlineFunction inline capacity; shrink the "
                  "captures (pool/box the state) or raise the alias capacity");
    static_assert(alignof(D) <= alignof(std::max_align_t));
    static_assert(std::is_nothrow_move_constructible_v<D>);
    ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
    invoke_ = [](void* s, Args... args) -> R {
      return (*std::launder(reinterpret_cast<D*>(s)))(std::forward<Args>(args)...);
    };
    if constexpr (!(std::is_trivially_copyable_v<D> &&
                    std::is_trivially_destructible_v<D>)) {
      manage_ = [](void* dst, void* src) {
        D* s = std::launder(reinterpret_cast<D*>(src));
        if (dst != nullptr) {
          ::new (dst) D(std::move(*s));
        }
        s->~D();
      };
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { MoveFrom(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  InlineFunction& operator=(std::nullptr_t) {
    Reset();
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { Reset(); }

  // Const like std::function's call operator: closures holding an InlineFunction
  // by value stay callable without `mutable`. The callable itself is invoked
  // non-const (it lives in our storage; constness here is shallow).
  R operator()(Args... args) const {
    return invoke_(const_cast<unsigned char*>(storage_), std::forward<Args>(args)...);
  }

  explicit operator bool() const { return invoke_ != nullptr; }
  friend bool operator==(const InlineFunction& f, std::nullptr_t) {
    return f.invoke_ == nullptr;
  }
  friend bool operator!=(const InlineFunction& f, std::nullptr_t) {
    return f.invoke_ != nullptr;
  }

  static constexpr std::size_t capacity() { return Cap; }

 private:
  void MoveFrom(InlineFunction& other) noexcept {
    if (other.invoke_ == nullptr) {
      return;
    }
    if (other.manage_ != nullptr) {
      other.manage_(storage_, other.storage_);
    } else {
      std::memcpy(storage_, other.storage_, Cap);
    }
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  void Reset() {
    if (manage_ != nullptr) {
      manage_(nullptr, storage_);
      manage_ = nullptr;
    }
    invoke_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char storage_[Cap];
  R (*invoke_)(void*, Args...) = nullptr;
  // Relocate (dst != null: move-construct dst from src, destroy src) or destroy
  // (dst == null). Null for trivially relocatable callables.
  void (*manage_)(void* dst, void* src) = nullptr;
};

}  // namespace remon

#endif  // SRC_SIM_INLINE_FN_H_

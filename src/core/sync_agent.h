// Record/replay agent for user-space synchronization (paper §2.3).
//
// Multi-threaded replicas are non-deterministic: without intervention their threads
// can acquire locks in different orders, execute different system-call sequences, and
// trip GHUMVEE's lockstep even on identical inputs. ReMon embeds a small agent in
// each replica that forces user-space synchronization operations to happen in the
// same order everywhere: the master logs each acquisition (object id, thread rank)
// into a shared totally-ordered log; slave threads block until the log says it is
// their turn.

#ifndef SRC_CORE_SYNC_AGENT_H_
#define SRC_CORE_SYNC_AGENT_H_

#include <cstdint>

#include "src/core/replication_buffer.h"
#include "src/kernel/guest.h"
#include "src/kernel/kernel.h"

namespace remon {

class SyncAgent {
 public:
  struct Config {
    int replica_index = 0;
    int num_replicas = 2;
    uint64_t log_size = 1024 * 1024;
  };

  SyncAgent(Kernel* kernel, Config config) : kernel_(kernel), config_(config) {}

  bool is_master() const { return config_.replica_index == 0; }

  // Guest-side setup: attach the shared log segment and register with the kernel.
  GuestTask<void> Initialize(Guest& g);

  // Serialization point before acquiring synchronization object `object_id`: the
  // master appends (object, rank); slaves wait until the log replays that exact
  // operation at their cursor.
  GuestTask<void> BeforeAcquire(Guest& g, uint32_t object_id);

  uint64_t ops_recorded() const { return ops_recorded_; }
  uint64_t ops_replayed() const { return ops_replayed_; }

 private:
  WaitQueue* LogQueue();

  static constexpr uint64_t kOffTail = 0;
  static constexpr uint64_t kOffEntries = 64;

  Kernel* kernel_;
  Config config_;
  RbView log_;
  uint64_t read_cursor_ = 0;  // Slave-side: next log index to replay.
  uint64_t ops_recorded_ = 0;
  uint64_t ops_replayed_ = 0;
};

}  // namespace remon

#endif  // SRC_CORE_SYNC_AGENT_H_

// Server applications for the paper's server benchmarks (Fig. 5, Table 2).
//
// Analogs of the servers the paper (and the MVEEs it compares against) evaluated:
//   nginx / lighttpd  — epoll event loops (multi-worker for nginx),
//   thttpd            — select()-based single-process loop,
//   apache 1.3        — worker pool, one (kept-alive) connection per thread,
//   memcached         — multi-threaded epoll key-value store,
//   redis / beanstalkd— single-threaded event loops with small responses.
//
// All speak a tiny framed protocol: a request is the 10-byte line "R<8 digits>\n"
// asking for that many response bytes. The servers differ in concurrency model,
// per-request compute, and response size — the dimensions that matter to an MVEE.

#ifndef SRC_WORKLOADS_SERVERS_H_
#define SRC_WORKLOADS_SERVERS_H_

#include <string>
#include <vector>

#include "src/kernel/guest.h"
#include "src/sim/time.h"

namespace remon {

inline constexpr uint64_t kRequestBytes = 10;

enum class ServerKind { kEpollLoop, kSelectLoop, kThreadPool };

struct ServerSpec {
  std::string name;
  ServerKind kind = ServerKind::kEpollLoop;
  int workers = 1;  // Event-loop threads or pool threads.
  uint16_t port = 80;
  DurationNs service_compute = Micros(25);  // Per-request application work.
  uint64_t default_response = 4096;         // Response size the client requests.
  double mem_intensity = 0.02;
  // Per-request housekeeping, as real servers do: a timestamp for the access log
  // (BASE), the log append itself (NONSOCKET_RW), and TCP_CORK-style socket options
  // around the response (SOCKET_RW).
  bool log_requests = true;
  int sockopts_per_request = 2;
  // Access-log appends per request (each an RB-batchable bounded-latency write on
  // the worker's own rank). >1 models chatty request accounting — error log,
  // stats counters — and is what the per-rank batch-tuning sweeps crank up.
  int log_writes = 1;
  // Multi-tier chains: when upstream_port != 0, requests that miss the local
  // tier are forwarded as a synchronous sub-request to (upstream_machine,
  // upstream_port) — typically the next tier's VIP — before the response goes
  // out. Hits are decided by a per-worker deterministic accumulator, never by
  // randomness: replicated workers must make identical decisions.
  uint32_t upstream_machine = 0;
  uint16_t upstream_port = 0;
  uint64_t upstream_bytes = 512;    // Sub-request response size.
  double upstream_hit_ratio = 0.0;  // Fraction served locally without forwarding.
};

ProgramFn ServerProgram(const ServerSpec& spec);

// The paper's server set (Fig. 5 / Table 2).
std::vector<ServerSpec> PaperServers();
// Look up a server spec by name.
ServerSpec ServerByName(const std::string& name);

}  // namespace remon

#endif  // SRC_WORKLOADS_SERVERS_H_

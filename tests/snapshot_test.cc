// Tests for the replica re-seed snapshot subsystem (src/core/snapshot.{h,cc}):
// sparse VMA image capture/restore (page-for-page equality including lazy holes),
// serialization round trips through the Begin/Chunk/End payloads, and assembler
// rejection of malformed checkpoints. The end-to-end kill/re-seed behavior is
// covered by the fuzz in tests/property_test.cc and the server test in
// tests/workloads_test.cc.

#include <gtest/gtest.h>

#include <cstring>

#include "src/core/snapshot.h"
#include "src/core/sync_agent.h"
#include "src/mem/address_space.h"
#include "src/sim/rng.h"

namespace remon {
namespace {

constexpr GuestAddr kBase = 0x100000;

// Page-for-page comparison including materialization state: a hole (untouched
// lazy page) must stay a hole, and every materialized page must be byte-equal.
void ExpectPageForPageEqual(const AddressSpace& a, GuestAddr a_start,
                            const AddressSpace& b, GuestAddr b_start, uint64_t length) {
  uint8_t pa[kPageSize];
  uint8_t pb[kPageSize];
  for (uint64_t off = 0; off < length; off += kPageSize) {
    bool ma = a.PageMaterialized(a_start + off);
    bool mb = b.PageMaterialized(b_start + off);
    ASSERT_TRUE(a.ReadUnchecked(a_start + off, pa, kPageSize).ok) << "off " << off;
    ASSERT_TRUE(b.ReadUnchecked(b_start + off, pb, kPageSize).ok) << "off " << off;
    EXPECT_EQ(0, std::memcmp(pa, pb, kPageSize)) << "page content at off " << off;
    if (ma != mb) {
      // Permitted only when the page reads as zero on both sides (an all-zero
      // materialized page is captured as a hole by design).
      uint8_t zero[kPageSize] = {};
      EXPECT_EQ(0, std::memcmp(pa, zero, kPageSize)) << "off " << off;
    }
  }
}

TEST(VmaImageTest, RoundTripPreservesLazyHoles) {
  constexpr uint64_t kLen = 64 * kPageSize;
  AddressSpace src;
  ASSERT_TRUE(src.MapFixedLazy(kBase, kLen, kProtRead | kProtWrite, "lazy"));

  // Touch a scattered subset; everything else stays a lazy hole.
  Rng rng(20260730);
  std::vector<uint64_t> touched;
  for (uint64_t p = 0; p < 60; p += 1 + rng.NextBelow(5)) {
    touched.push_back(p);
    std::vector<uint8_t> bytes(kPageSize);
    for (auto& b : bytes) {
      b = static_cast<uint8_t>(rng.NextBelow(256));
    }
    bytes[0] = static_cast<uint8_t>(1 + rng.NextBelow(255));  // Never a zero page.
    ASSERT_TRUE(src.Write(kBase + p * kPageSize, bytes.data(), bytes.size()).ok);
  }
  // One touched-but-zero page: must be captured as a hole.
  uint8_t zeros[kPageSize] = {};
  ASSERT_TRUE(src.Write(kBase + 63 * kPageSize, zeros, kPageSize).ok);

  VmaImage image = CaptureVmaImage(src, kBase, kLen);
  EXPECT_EQ(image.length, kLen);
  EXPECT_EQ(image.run_bytes(), touched.size() * kPageSize);

  // Capture must not have materialized any hole (page 63 stays materialized in the
  // source — it was written, just with zeros — but is captured as a hole).
  for (uint64_t p = 0; p < 60; ++p) {
    bool is_touched = false;
    for (uint64_t t : touched) {
      is_touched |= t == p;
    }
    EXPECT_EQ(src.PageMaterialized(kBase + p * kPageSize), is_touched) << p;
  }

  AddressSpace dst;
  ASSERT_TRUE(dst.MapFixedLazy(kBase, kLen, kProtRead | kProtWrite, "lazy"));
  ASSERT_TRUE(RestoreVmaImage(&dst, kBase, image));

  ExpectPageForPageEqual(src, kBase, dst, kBase, kLen);
  // Holes stayed lazy on the restored side too (the zero page at 63 included).
  for (uint64_t p = 0; p < 64; ++p) {
    bool is_touched = false;
    for (uint64_t t : touched) {
      is_touched |= t == p;
    }
    EXPECT_EQ(dst.PageMaterialized(kBase + p * kPageSize), is_touched) << p;
  }
}

TEST(VmaImageTest, AdjacentPagesCoalesceIntoOneRun) {
  AddressSpace src;
  ASSERT_TRUE(src.MapFixedLazy(kBase, 16 * kPageSize, kProtRead | kProtWrite, "lazy"));
  uint8_t fill[kPageSize];
  std::memset(fill, 0xab, sizeof(fill));
  for (uint64_t p = 2; p <= 5; ++p) {
    ASSERT_TRUE(src.Write(kBase + p * kPageSize, fill, kPageSize).ok);
  }
  VmaImage image = CaptureVmaImage(src, kBase, 16 * kPageSize);
  ASSERT_EQ(image.runs.size(), 1u);
  EXPECT_EQ(image.runs[0].offset, 2 * kPageSize);
  EXPECT_EQ(image.runs[0].bytes.size(), 4 * kPageSize);
}

// A synthetic checkpoint with a sparse multi-run image, exercised through the
// exact payloads the wire carries.
ReplicaSnapshot MakeSnapshot(Rng* rng, uint64_t rb_size, int max_ranks) {
  ReplicaSnapshot snap;
  snap.rb_size = rb_size;
  snap.max_ranks = max_ranks;
  snap.rb_image.length = rb_size;
  uint64_t off = 0;
  while (off < rb_size) {
    uint64_t pages = 1 + rng->NextBelow(40);
    uint64_t len = std::min(pages * kPageSize, rb_size - off);
    if (rng->NextBelow(2) == 0) {
      PageRun run;
      run.offset = off;
      run.bytes.resize(len);
      for (auto& b : run.bytes) {
        b = static_cast<uint8_t>(rng->NextBelow(256));
      }
      snap.rb_image.runs.push_back(std::move(run));
    }
    off += len;
  }
  for (int r = 0; r < max_ranks; ++r) {
    snap.cursors.push_back(128 + static_cast<uint64_t>(r) * 64);
    snap.seqs.push_back(rng->NextBelow(1000));
  }
  snap.lockstep_cursor = rng->NextBelow(100000);
  snap.file_map.assign(kPageSize, 0);
  for (auto& b : snap.file_map) {
    b = static_cast<uint8_t>(rng->NextBelow(256));
  }
  for (int i = 0; i < 5; ++i) {
    snap.epoll.push_back(EpollShadowTriple{i, 10 + i, rng->NextBelow(1u << 30)});
  }
  if (snap.rb_image.runs.empty()) {
    // Every test needs at least one chunk on the wire.
    PageRun run;
    run.offset = 0;
    run.bytes.assign(kPageSize, 0x77);
    snap.rb_image.runs.push_back(std::move(run));
  }
  return snap;
}

// Adds a coherent sync-agent log section (v3): a circular log of `cap` slots with
// `tail` ops recorded, the occupied-slot image carrying per-slot seq stamps that
// match what a real wraparound history would leave behind.
void AddSyncSection(ReplicaSnapshot* snap, Rng* rng, uint64_t cap, uint64_t tail) {
  snap->sync_log_size = kSyncLogOffEntries + cap * kSyncLogEntrySize;
  snap->sync_tail = tail;
  snap->sync_read_cursor = rng->NextBelow(tail + 1);
  uint64_t occupied = std::min(tail, cap);
  snap->sync_image.assign(occupied * kSyncLogEntrySize, 0);
  for (uint64_t s = 0; s < occupied; ++s) {
    uint32_t obj = static_cast<uint32_t>(rng->NextBelow(1000));
    uint32_t rank = static_cast<uint32_t>(rng->NextBelow(4));
    // The last seq written to slot s: the largest value < tail congruent to s.
    uint64_t laps = (tail - 1 - s) / cap;
    uint64_t seq = s + laps * cap;
    uint8_t* slot = snap->sync_image.data() + s * kSyncLogEntrySize;
    std::memcpy(slot, &obj, 4);
    std::memcpy(slot + 4, &rank, 4);
    std::memcpy(slot + 8, &seq, 8);
  }
}

std::vector<uint8_t> FlattenImage(const ReplicaSnapshot& snap) {
  std::vector<uint8_t> flat(snap.rb_size, 0);
  for (const PageRun& run : snap.rb_image.runs) {
    std::memcpy(flat.data() + run.offset, run.bytes.data(), run.bytes.size());
  }
  return flat;
}

TEST(SnapshotCodecTest, SerializeAssembleRoundTrip) {
  Rng rng(99);
  for (int iter = 0; iter < 20; ++iter) {
    uint64_t rb_size = (64 + rng.NextBelow(128)) * kPageSize;
    int ranks = 1 + static_cast<int>(rng.NextBelow(8));
    ReplicaSnapshot snap = MakeSnapshot(&rng, rb_size, ranks);
    if (iter % 2 == 0) {
      // Half the sweep carries a v3 sync section, wrapped and unwrapped alike.
      uint64_t cap = 8 + rng.NextBelow(64);
      AddSyncSection(&snap, &rng, cap, rng.NextBelow(3 * cap) + 1);
    }
    SnapshotPayloads payloads = SerializeSnapshot(snap);

    SnapshotAssembler asm_;
    ASSERT_TRUE(asm_.Begin(payloads.begin)) << asm_.error();
    for (const auto& chunk : payloads.chunks) {
      ASSERT_TRUE(asm_.AddChunk(chunk)) << asm_.error();
    }
    ASSERT_TRUE(asm_.End(payloads.end)) << asm_.error();
    ASSERT_EQ(asm_.state(), SnapshotAssembler::State::kComplete);

    const ReplicaSnapshot& out = asm_.snapshot();
    EXPECT_EQ(out.rb_size, snap.rb_size);
    EXPECT_EQ(out.max_ranks, snap.max_ranks);
    EXPECT_EQ(out.cursors, snap.cursors);
    EXPECT_EQ(out.seqs, snap.seqs);
    EXPECT_EQ(out.lockstep_cursor, snap.lockstep_cursor);
    EXPECT_EQ(out.file_map, snap.file_map);
    ASSERT_EQ(out.epoll.size(), snap.epoll.size());
    for (size_t i = 0; i < out.epoll.size(); ++i) {
      EXPECT_EQ(out.epoll[i].epfd, snap.epoll[i].epfd);
      EXPECT_EQ(out.epoll[i].fd, snap.epoll[i].fd);
      EXPECT_EQ(out.epoll[i].data, snap.epoll[i].data);
    }
    EXPECT_EQ(out.sync_log_size, snap.sync_log_size);
    EXPECT_EQ(out.sync_tail, snap.sync_tail);
    EXPECT_EQ(out.sync_read_cursor, snap.sync_read_cursor);
    EXPECT_EQ(out.sync_image, snap.sync_image) << "iter " << iter;
    EXPECT_EQ(asm_.image(), FlattenImage(snap)) << "iter " << iter;
  }
}

// --- v3 sync-log section rejection vectors -----------------------------------------

TEST(SnapshotCodecTest, SyncSectionWithoutLogSizeRejected) {
  Rng rng(41);
  ReplicaSnapshot snap = MakeSnapshot(&rng, 64 * kPageSize, 2);
  AddSyncSection(&snap, &rng, 16, 10);
  snap.sync_log_size = 0;  // Image + tail without a log to describe them.
  SnapshotPayloads payloads = SerializeSnapshot(snap);
  SnapshotAssembler asm_;
  EXPECT_FALSE(asm_.Begin(payloads.begin));
  EXPECT_EQ(asm_.state(), SnapshotAssembler::State::kFailed);
}

TEST(SnapshotCodecTest, SyncImageLengthDisagreeingWithTailRejected) {
  Rng rng(43);
  ReplicaSnapshot snap = MakeSnapshot(&rng, 64 * kPageSize, 2);
  AddSyncSection(&snap, &rng, 16, 10);
  snap.sync_image.resize(snap.sync_image.size() - kSyncLogEntrySize);  // One short.
  SnapshotPayloads payloads = SerializeSnapshot(snap);
  SnapshotAssembler asm_;
  EXPECT_FALSE(asm_.Begin(payloads.begin));
  EXPECT_EQ(asm_.state(), SnapshotAssembler::State::kFailed);
}

TEST(SnapshotCodecTest, SyncCursorPastTailRejected) {
  Rng rng(47);
  ReplicaSnapshot snap = MakeSnapshot(&rng, 64 * kPageSize, 2);
  AddSyncSection(&snap, &rng, 16, 10);
  snap.sync_read_cursor = snap.sync_tail + 1;  // A cursor the log cannot reach.
  SnapshotPayloads payloads = SerializeSnapshot(snap);
  SnapshotAssembler asm_;
  EXPECT_FALSE(asm_.Begin(payloads.begin));
  EXPECT_EQ(asm_.state(), SnapshotAssembler::State::kFailed);
}

TEST(SnapshotCodecTest, SyncLogSmallerThanItsHeaderRejected) {
  Rng rng(53);
  ReplicaSnapshot snap = MakeSnapshot(&rng, 64 * kPageSize, 2);
  AddSyncSection(&snap, &rng, 4, 4);
  snap.sync_log_size = kSyncLogOffEntries;  // Room for the tail word, no slots.
  SnapshotPayloads payloads = SerializeSnapshot(snap);
  SnapshotAssembler asm_;
  EXPECT_FALSE(asm_.Begin(payloads.begin));
  EXPECT_EQ(asm_.state(), SnapshotAssembler::State::kFailed);
}

TEST(SnapshotCodecTest, TruncatedChunkStreamRejectedAtEnd) {
  Rng rng(7);
  ReplicaSnapshot snap = MakeSnapshot(&rng, 128 * kPageSize, 4);
  SnapshotPayloads payloads = SerializeSnapshot(snap);
  ASSERT_GT(payloads.chunks.size(), 1u);

  SnapshotAssembler asm_;
  ASSERT_TRUE(asm_.Begin(payloads.begin));
  // Drop the last chunk: the commit record must refuse the short image.
  for (size_t i = 0; i + 1 < payloads.chunks.size(); ++i) {
    ASSERT_TRUE(asm_.AddChunk(payloads.chunks[i]));
  }
  EXPECT_FALSE(asm_.End(payloads.end));
  EXPECT_EQ(asm_.state(), SnapshotAssembler::State::kFailed);
}

TEST(SnapshotCodecTest, CorruptChunkByteFailsImageCrc) {
  Rng rng(11);
  ReplicaSnapshot snap = MakeSnapshot(&rng, 128 * kPageSize, 2);
  SnapshotPayloads payloads = SerializeSnapshot(snap);
  ASSERT_FALSE(payloads.chunks.empty());

  SnapshotAssembler asm_;
  ASSERT_TRUE(asm_.Begin(payloads.begin));
  for (size_t i = 0; i < payloads.chunks.size(); ++i) {
    std::vector<uint8_t> chunk = payloads.chunks[i];
    if (i == payloads.chunks.size() / 2) {
      chunk[chunk.size() - 1] ^= 0x01;  // One flipped image bit.
    }
    ASSERT_TRUE(asm_.AddChunk(chunk));  // Per-chunk structure is still valid...
  }
  EXPECT_FALSE(asm_.End(payloads.end));  // ...but the end-to-end CRC is not.
  EXPECT_EQ(asm_.state(), SnapshotAssembler::State::kFailed);
}

TEST(SnapshotCodecTest, OutOfBoundsChunkRejectedImmediately) {
  Rng rng(13);
  ReplicaSnapshot snap = MakeSnapshot(&rng, 64 * kPageSize, 2);
  SnapshotPayloads payloads = SerializeSnapshot(snap);
  SnapshotAssembler asm_;
  ASSERT_TRUE(asm_.Begin(payloads.begin));
  ASSERT_FALSE(payloads.chunks.empty());
  std::vector<uint8_t> chunk = payloads.chunks[0];
  uint64_t bad_off = snap.rb_size - 16;  // Data would run past the image end.
  std::memcpy(chunk.data(), &bad_off, 8);
  EXPECT_FALSE(asm_.AddChunk(chunk));
  EXPECT_EQ(asm_.state(), SnapshotAssembler::State::kFailed);
}

TEST(SnapshotCodecTest, ChunkBeforeBeginIsProtocolViolation) {
  Rng rng(17);
  ReplicaSnapshot snap = MakeSnapshot(&rng, 64 * kPageSize, 2);
  SnapshotPayloads payloads = SerializeSnapshot(snap);
  ASSERT_FALSE(payloads.chunks.empty());
  SnapshotAssembler asm_;
  EXPECT_FALSE(asm_.AddChunk(payloads.chunks[0]));
  EXPECT_EQ(asm_.state(), SnapshotAssembler::State::kFailed);
  // A failed assembler refuses everything until Reset.
  EXPECT_FALSE(asm_.Begin(payloads.begin));
  asm_.Reset();
  EXPECT_TRUE(asm_.Begin(payloads.begin));
}

// --- kSnapshotDelta (wire v5) round-trip and rejection vectors ----------------------

// Marks a synthetic checkpoint as an O(delta) one: per-rank resume offsets, a
// dirty-page file-map section (3 of 4 pages) with a whole-map CRC, and a reset
// generation for the lap guard.
ReplicaSnapshot MakeDeltaSnapshot(Rng* rng, uint64_t rb_size, int max_ranks) {
  ReplicaSnapshot snap = MakeSnapshot(rng, rb_size, max_ranks);
  snap.is_delta = true;
  snap.reset_generation = rng->NextBelow(5);
  for (int r = 0; r < max_ranks; ++r) {
    snap.delta_from.push_back(rng->NextBelow(snap.cursors[static_cast<size_t>(r)] + 1));
  }
  snap.file_map_page_count = 4;
  snap.file_map_crc = static_cast<uint32_t>(rng->NextBelow(1u << 31));
  snap.file_map_pages = {0, 2, 3};
  snap.file_map.assign(3 * kPageSize, 0);
  for (auto& b : snap.file_map) {
    b = static_cast<uint8_t>(rng->NextBelow(256));
  }
  return snap;
}

// Adds a delta sync section: slots [from, tail) in seq order, the replay cursor
// somewhere inside the slice, slice length within one lap of a `cap`-slot log.
void AddSyncDeltaSection(ReplicaSnapshot* snap, Rng* rng, uint64_t cap,
                         uint64_t from, uint64_t tail) {
  snap->sync_log_size = kSyncLogOffEntries + cap * kSyncLogEntrySize;
  snap->sync_from = from;
  snap->sync_tail = tail;
  snap->sync_read_cursor = from + rng->NextBelow(tail - from + 1);
  snap->sync_image.assign((tail - from) * kSyncLogEntrySize, 0);
  for (uint64_t i = 0; i < tail - from; ++i) {
    uint32_t obj = static_cast<uint32_t>(rng->NextBelow(1000));
    uint32_t rank = static_cast<uint32_t>(rng->NextBelow(4));
    uint64_t seq = from + i;  // Seq order, embedded seqs.
    uint8_t* slot = snap->sync_image.data() + i * kSyncLogEntrySize;
    std::memcpy(slot, &obj, 4);
    std::memcpy(slot + 4, &rank, 4);
    std::memcpy(slot + 8, &seq, 8);
  }
}

TEST(SnapshotCodecTest, DeltaSerializeAssembleRoundTrip) {
  Rng rng(101);
  for (int iter = 0; iter < 20; ++iter) {
    uint64_t rb_size = (64 + rng.NextBelow(128)) * kPageSize;
    int ranks = 1 + static_cast<int>(rng.NextBelow(8));
    ReplicaSnapshot snap = MakeDeltaSnapshot(&rng, rb_size, ranks);
    if (iter % 2 == 0) {
      uint64_t cap = 8 + rng.NextBelow(64);
      uint64_t from = rng.NextBelow(100);
      uint64_t tail = from + rng.NextBelow(cap + 1);
      AddSyncDeltaSection(&snap, &rng, cap, from, tail);
    }
    SnapshotPayloads payloads = SerializeSnapshot(snap);
    ASSERT_TRUE(payloads.delta);

    SnapshotAssembler asm_;
    ASSERT_TRUE(asm_.BeginDelta(payloads.begin)) << asm_.error();
    for (const auto& chunk : payloads.chunks) {
      ASSERT_TRUE(asm_.AddChunk(chunk)) << asm_.error();
    }
    ASSERT_TRUE(asm_.End(payloads.end)) << asm_.error();
    ASSERT_EQ(asm_.state(), SnapshotAssembler::State::kComplete);

    const ReplicaSnapshot& out = asm_.snapshot();
    EXPECT_TRUE(out.is_delta);
    EXPECT_EQ(out.rb_size, snap.rb_size);
    EXPECT_EQ(out.max_ranks, snap.max_ranks);
    EXPECT_EQ(out.cursors, snap.cursors);
    EXPECT_EQ(out.seqs, snap.seqs);
    EXPECT_EQ(out.delta_from, snap.delta_from);
    EXPECT_EQ(out.lockstep_cursor, snap.lockstep_cursor);
    EXPECT_EQ(out.reset_generation, snap.reset_generation);
    EXPECT_EQ(out.file_map_page_count, snap.file_map_page_count);
    EXPECT_EQ(out.file_map_crc, snap.file_map_crc);
    EXPECT_EQ(out.file_map_pages, snap.file_map_pages);
    EXPECT_EQ(out.file_map, snap.file_map);
    ASSERT_EQ(out.epoll.size(), snap.epoll.size());
    for (size_t i = 0; i < out.epoll.size(); ++i) {
      EXPECT_EQ(out.epoll[i].epfd, snap.epoll[i].epfd);
      EXPECT_EQ(out.epoll[i].fd, snap.epoll[i].fd);
      EXPECT_EQ(out.epoll[i].data, snap.epoll[i].data);
    }
    EXPECT_EQ(out.sync_log_size, snap.sync_log_size);
    EXPECT_EQ(out.sync_from, snap.sync_from);
    EXPECT_EQ(out.sync_tail, snap.sync_tail);
    EXPECT_EQ(out.sync_read_cursor, snap.sync_read_cursor);
    EXPECT_EQ(out.sync_image, snap.sync_image) << "iter " << iter;
    EXPECT_EQ(asm_.image(), FlattenImage(snap)) << "iter " << iter;
  }
}

TEST(SnapshotCodecTest, TruncatedDeltaPayloadRejected) {
  Rng rng(103);
  ReplicaSnapshot snap = MakeDeltaSnapshot(&rng, 64 * kPageSize, 2);
  SnapshotPayloads payloads = SerializeSnapshot(snap);

  // One byte short: the variable-section arithmetic no longer adds up.
  std::vector<uint8_t> short_one = payloads.begin;
  short_one.pop_back();
  SnapshotAssembler asm_;
  EXPECT_FALSE(asm_.BeginDelta(short_one));
  EXPECT_EQ(asm_.state(), SnapshotAssembler::State::kFailed);

  // Shorter than the fixed header: rejected before any field is read.
  std::vector<uint8_t> short_hdr(payloads.begin.begin(), payloads.begin.begin() + 40);
  asm_.Reset();
  EXPECT_FALSE(asm_.BeginDelta(short_hdr));
  EXPECT_EQ(asm_.state(), SnapshotAssembler::State::kFailed);

  // The untruncated payload still opens fine after Reset.
  asm_.Reset();
  EXPECT_TRUE(asm_.BeginDelta(payloads.begin)) << asm_.error();
}

TEST(SnapshotCodecTest, LapStaleDeltaSyncSliceRejected) {
  Rng rng(107);
  ReplicaSnapshot snap = MakeDeltaSnapshot(&rng, 64 * kPageSize, 2);
  // A 16-slot log with a 20-op slice: the leader wrapped past the replica's
  // cursor after cutting the basis, so slots [from, tail-cap) are gone and the
  // delta is stale. The joiner must refuse it (the leader then retries full).
  uint64_t cap = 16;
  AddSyncDeltaSection(&snap, &rng, cap, /*from=*/10, /*tail=*/10 + cap + 4);
  SnapshotPayloads payloads = SerializeSnapshot(snap);
  SnapshotAssembler asm_;
  EXPECT_FALSE(asm_.BeginDelta(payloads.begin));
  EXPECT_EQ(asm_.state(), SnapshotAssembler::State::kFailed);
  EXPECT_NE(asm_.error().find("wrapped past"), std::string::npos) << asm_.error();
}

TEST(SnapshotCodecTest, DeltaFileMapPagesOutOfOrderRejected) {
  Rng rng(109);
  ReplicaSnapshot snap = MakeDeltaSnapshot(&rng, 64 * kPageSize, 2);
  snap.file_map_pages = {2, 1, 3};  // Not strictly increasing.
  SnapshotPayloads payloads = SerializeSnapshot(snap);
  SnapshotAssembler asm_;
  EXPECT_FALSE(asm_.BeginDelta(payloads.begin));
  EXPECT_EQ(asm_.state(), SnapshotAssembler::State::kFailed);
}

}  // namespace
}  // namespace remon

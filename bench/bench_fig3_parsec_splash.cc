// Figure 3: normalized execution time of the PARSEC 2.1 and SPLASH-2x suites under
// GHUMVEE-only monitoring and under ReMon with IP-MON at NONSOCKET_RW_LEVEL
// (2 replicas, 4 worker threads), versus the paper's bars — plus two
// beyond-the-paper columns running the barrier-rotated sync variant of every
// benchmark with the record/replay agent, all-local and with one replica behind
// the RB transport (the sync-agent log streamed as kSyncLog frames).
//
// Tracked: --json=PATH emits remon-bench-v1 metrics (BENCH_fig3.json baseline,
// gated in CI). Namespaces `parsec/...` and `splash/...`.

#include "src/harness/bench_main.h"

namespace remon {
namespace {

double PaperGhumvee(const WorkloadSpec& s) { return s.paper_ghumvee; }
double PaperRemon(const WorkloadSpec& s) { return s.paper_remon; }

// Sync-column shape: the 4-thread barrier rotation, two agent-ordered
// acquisitions per iteration. With the 64-slot log below, every benchmark
// wraps the circular sync log several laps per run.
WorkloadSpec SyncShape(const WorkloadSpec& s) { return SyncVariant(s, 2, 80); }

std::vector<SuiteColumn> Columns() {
  RunConfig cp;
  cp.mode = MveeMode::kGhumveeOnly;
  cp.replicas = 2;

  RunConfig ip;
  ip.mode = MveeMode::kRemon;
  ip.replicas = 2;
  ip.level = PolicyLevel::kNonsocketRw;

  RunConfig sync_local = ip;
  sync_local.rb_batch_max = 16;
  sync_local.rb_batch_policy = RbBatchPolicy::kAdaptive;
  sync_local.use_sync_agent = true;
  // A 64-slot circular log: barrier/lock-dominated compute must lap it, so the
  // wraparound gate and the coalescing window are both on the measured path.
  sync_local.sync_log_size = kSyncLogOffEntries + 64 * kSyncLogEntrySize;

  RunConfig sync_remote = sync_local;
  sync_remote.placement = {1};  // Replica 1 on its own machine, RB-transport-fed.
  // The rotation flushes a tiny frame at nearly every liveness point; under the
  // default 8-frame budget the master spends the run parked on ack round-trips
  // (sync_log_append_stalls) instead of streaming. A deep window leaves the
  // remote column bandwidth-bound, not window-bound (remon_test.cc locks the
  // knob's effect in).
  sync_remote.rb_max_inflight_frames = 64;

  return {
      {"ghumvee2", cp, nullptr, PaperGhumvee},
      {"remon2_nsrw", ip, nullptr, PaperRemon},
      {"sync_local2", sync_local, SyncShape, nullptr},
      {"sync_remote2", sync_remote, SyncShape, nullptr},
  };
}

}  // namespace
}  // namespace remon

int main(int argc, char** argv) {
  remon::BenchMain bench("fig3", argc, argv);
  remon::RunSuiteGrid("parsec",
                      "Figure 3: PARSEC 2.1 (2 replicas, 4 worker threads)",
                      remon::ParsecSuite(), remon::Columns(), &bench);
  remon::RunSuiteGrid("splash",
                      "Figure 3: SPLASH-2x (2 replicas, 4 worker threads)",
                      remon::SplashSuite(), remon::Columns(), &bench);
  std::printf(
      "sync_local2/sync_remote2: barrier-rotated sync variant (4 threads, 2\n"
      "agent-ordered acquisitions/iter, 64-slot log) under the record/replay\n"
      "agent, all-local vs. one replica fed over the RB transport.\n");
  return bench.Finish();
}

// Unit tests for the memory substrate: address spaces, layout randomization, shm.

#include <gtest/gtest.h>

#include <cstring>

#include "src/mem/address_space.h"
#include "src/mem/layout.h"
#include "src/mem/shm.h"
#include "src/sim/rng.h"

namespace remon {
namespace {

TEST(AddressSpaceTest, MapReadWrite) {
  AddressSpace as;
  ASSERT_TRUE(as.MapFixed(0x10000, 8192, kProtRead | kProtWrite, false, "r"));
  uint64_t v = 0xdeadbeefcafef00dULL;
  EXPECT_TRUE(as.Write(0x10ff8, &v, 8).ok);  // Spans into the second page.
  uint64_t r = 0;
  EXPECT_TRUE(as.Read(0x10ff8, &r, 8).ok);
  EXPECT_EQ(r, v);
}

TEST(AddressSpaceTest, UnmappedAccessFaults) {
  AddressSpace as;
  uint8_t b = 0;
  AccessResult res = as.Read(0x500000, &b, 1);
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.fault_addr, 0x500000u);
}

TEST(AddressSpaceTest, ProtectionEnforced) {
  AddressSpace as;
  ASSERT_TRUE(as.MapFixed(0x10000, 4096, kProtRead, false, "ro"));
  uint8_t b = 1;
  EXPECT_FALSE(as.Write(0x10000, &b, 1).ok);
  EXPECT_TRUE(as.Read(0x10000, &b, 1).ok);
  // Unchecked (monitor) access bypasses protections.
  EXPECT_TRUE(as.WriteUnchecked(0x10000, &b, 1).ok);
}

TEST(AddressSpaceTest, MprotectChangesPermissions) {
  AddressSpace as;
  ASSERT_TRUE(as.MapFixed(0x10000, 8192, kProtRead | kProtWrite, false, "rw"));
  ASSERT_TRUE(as.Protect(0x10000, 4096, kProtRead));
  uint8_t b = 1;
  EXPECT_FALSE(as.Write(0x10000, &b, 1).ok);
  EXPECT_TRUE(as.Write(0x11000, &b, 1).ok);
}

TEST(AddressSpaceTest, ProtectHugeLazyRegionIsVmaGranular) {
  // Protect() must validate and update at VMA granularity, touching only
  // materialized pages: a terabyte lazy region has ~2^28 pages, and a per-page
  // walk would hang the test, while the VMA walk is instant.
  AddressSpace as;
  constexpr GuestAddr kBase = 0x10000;
  constexpr uint64_t kTiB = 1ULL << 40;
  ASSERT_TRUE(as.MapFixedLazy(kBase, kTiB, kProtRead | kProtWrite, "huge-lazy"));
  uint64_t v = 0xabcdef;
  ASSERT_TRUE(as.Write(kBase + (5ULL << 30), &v, 8).ok);  // Materialize two pages,
  ASSERT_TRUE(as.Write(kBase + (9ULL << 30), &v, 8).ok);  // far apart.

  ASSERT_TRUE(as.Protect(kBase, kTiB, kProtRead));
  // Materialized pages: data survives, writes now fault.
  uint64_t r = 0;
  EXPECT_TRUE(as.Read(kBase + (5ULL << 30), &r, 8).ok);
  EXPECT_EQ(r, v);
  EXPECT_FALSE(as.Write(kBase + (5ULL << 30), &v, 8).ok);
  EXPECT_FALSE(as.Write(kBase + (9ULL << 30), &v, 8).ok);
  // Untouched lazy pages: reads still serve zeroes, writes fault via the VMA prot.
  EXPECT_TRUE(as.Read(kBase + (100ULL << 30), &r, 8).ok);
  EXPECT_EQ(r, 0u);
  EXPECT_FALSE(as.Write(kBase + (100ULL << 30), &v, 8).ok);
  // Only the two touched pages are resident.
  EXPECT_LE(as.mapped_bytes(), 2 * kPageSize);

  // Re-enabling writes on a subrange splits the VMA and sticks for pages that
  // materialize later.
  ASSERT_TRUE(as.Protect(kBase + (200ULL << 30), 1ULL << 30, kProtRead | kProtWrite));
  EXPECT_TRUE(as.Write(kBase + (200ULL << 30) + 123, &v, 8).ok);
  EXPECT_FALSE(as.Write(kBase + (201ULL << 30) + 123, &v, 8).ok);
}

TEST(AddressSpaceTest, ProtectRejectsRangesWithGaps) {
  AddressSpace as;
  ASSERT_TRUE(as.MapFixed(0x10000, 4096, kProtRead | kProtWrite, false, "a"));
  ASSERT_TRUE(as.MapFixedLazy(0x13000, 4096, kProtRead | kProtWrite, "b"));
  // [0x10000, 0x14000) has a hole at 0x11000..0x13000: mprotect must fail without
  // changing either mapping.
  EXPECT_FALSE(as.Protect(0x10000, 0x4000, kProtRead));
  uint8_t b = 1;
  EXPECT_TRUE(as.Write(0x10000, &b, 1).ok);
  EXPECT_TRUE(as.Write(0x13000, &b, 1).ok);
  // Adjacent VMAs with no hole protect fine across the boundary.
  ASSERT_TRUE(as.MapFixed(0x11000, 0x2000, kProtRead | kProtWrite, false, "fill"));
  EXPECT_TRUE(as.Protect(0x10000, 0x4000, kProtRead));
  EXPECT_FALSE(as.Write(0x12000, &b, 1).ok);
}

TEST(AddressSpaceTest, DoubleMapFails) {
  AddressSpace as;
  ASSERT_TRUE(as.MapFixed(0x10000, 4096, kProtRead, false, "a"));
  EXPECT_FALSE(as.MapFixed(0x10000, 4096, kProtRead, false, "b"));
}

TEST(AddressSpaceTest, LazyMappingMaterializesOnTouch) {
  AddressSpace as;
  // A 64 MiB demand-paged region costs nothing at map time...
  ASSERT_TRUE(as.MapFixedLazy(0x10000, 64 * 1024 * 1024, kProtRead | kProtWrite, "lazy"));
  EXPECT_EQ(as.mapped_bytes(), 0u);
  // ...occupies the address range (overlap rejected, VMA visible)...
  EXPECT_FALSE(as.MapFixed(0x10000, 4096, kProtRead, false, "clash"));
  ASSERT_NE(as.FindVma(0x20000), nullptr);
  // ...reads back zeroes and accepts writes sparsely.
  uint64_t v = 0;
  EXPECT_TRUE(as.Read(0x1234560, &v, 8).ok);
  EXPECT_EQ(v, 0u);
  v = 0x1122334455667788ULL;
  EXPECT_TRUE(as.Write(0x2234560, &v, 8).ok);
  uint64_t r = 0;
  EXPECT_TRUE(as.Read(0x2234560, &r, 8).ok);
  EXPECT_EQ(r, v);
  // Only the touched pages materialized.
  EXPECT_LE(as.mapped_bytes(), 4 * kPageSize);
}

TEST(AddressSpaceTest, LazyMappingHonorsProtection) {
  AddressSpace as;
  ASSERT_TRUE(as.MapFixedLazy(0x10000, 1 << 20, kProtRead, "lazy-ro"));
  uint8_t b = 1;
  EXPECT_FALSE(as.Write(0x10000, &b, 1).ok);   // Untouched page: prot from the VMA.
  EXPECT_TRUE(as.Read(0x10000, &b, 1).ok);
  EXPECT_FALSE(as.Write(0x10000, &b, 1).ok);   // Materialized page: still read-only.
  // mprotect on a partly-unmaterialized lazy region works; future pages inherit.
  ASSERT_TRUE(as.Protect(0x10000, 8192, kProtRead | kProtWrite));
  EXPECT_TRUE(as.Write(0x10000, &b, 1).ok);
  EXPECT_TRUE(as.Write(0x11000, &b, 1).ok);    // Was unmaterialized at Protect time.
}

TEST(AddressSpaceTest, LazyMappingResolvesFramesForFutexKeys) {
  AddressSpace as;
  ASSERT_TRUE(as.MapFixedLazy(0x10000, 1 << 20, kProtRead | kProtWrite, "lazy"));
  uint64_t off = 0;
  Page* f1 = as.ResolveFrame(0x13008, &off);
  ASSERT_NE(f1, nullptr);
  EXPECT_EQ(off, 8u);
  // The frame is stable: a second resolution and a read see the same page.
  Page* f2 = as.ResolveFrame(0x13000, nullptr);
  EXPECT_EQ(f1, f2);
  EXPECT_FALSE(as.MapFixedLazy(0x100000, 4096, kProtRead, "clash"));
}

TEST(AddressSpaceTest, UnmapThenRemap) {
  AddressSpace as;
  ASSERT_TRUE(as.MapFixed(0x10000, 4096, kProtRead, false, "a"));
  as.Unmap(0x10000, 4096);
  EXPECT_TRUE(as.MapFixed(0x10000, 4096, kProtRead, false, "b"));
  EXPECT_EQ(as.FindVma(0x10000)->name, "b");
}

TEST(AddressSpaceTest, PartialUnmapSplitsVma) {
  AddressSpace as;
  ASSERT_TRUE(as.MapFixed(0x10000, 3 * 4096, kProtRead, false, "abc"));
  as.Unmap(0x11000, 4096);  // Middle page.
  EXPECT_NE(as.FindVma(0x10000), nullptr);
  EXPECT_EQ(as.FindVma(0x11000), nullptr);
  EXPECT_NE(as.FindVma(0x12000), nullptr);
  uint8_t b = 0;
  EXPECT_TRUE(as.Read(0x10000, &b, 1).ok);
  EXPECT_FALSE(as.Read(0x11000, &b, 1).ok);
  EXPECT_TRUE(as.Read(0x12000, &b, 1).ok);
}

TEST(AddressSpaceTest, FindFreeRangeAvoidsMappings) {
  AddressSpace as;
  ASSERT_TRUE(as.MapFixed(0x7f0000000000, 4096, kProtRead, false, "occ"));
  GuestAddr found = as.FindFreeRange(0x7f0000000000, 8192);
  ASSERT_NE(found, 0u);
  EXPECT_TRUE(as.MapFixed(found, 8192, kProtRead, false, "new"));
}

TEST(AddressSpaceTest, SharedFramesAliasAcrossSpaces) {
  AddressSpace a;
  AddressSpace b;
  ASSERT_TRUE(a.MapFixed(0x10000, 4096, kProtRead | kProtWrite, true, "shm"));
  std::vector<PageRef> frames = a.FramesFor(0x10000, 4096);
  ASSERT_EQ(frames.size(), 1u);
  ASSERT_TRUE(b.MapFixedBacked(0x90000, 4096, kProtRead | kProtWrite, true, "shm", frames));
  uint32_t v = 12345;
  ASSERT_TRUE(a.Write(0x10010, &v, 4).ok);
  uint32_t r = 0;
  ASSERT_TRUE(b.Read(0x90010, &r, 4).ok);
  EXPECT_EQ(r, 12345u);
}

TEST(AddressSpaceTest, RemapGrowsInPlace) {
  AddressSpace as;
  ASSERT_TRUE(as.MapFixed(0x10000, 4096, kProtRead | kProtWrite, false, "g"));
  EXPECT_EQ(as.Remap(0x10000, 4096, 8192), 0x10000u);
  uint8_t b = 7;
  EXPECT_TRUE(as.Write(0x11000, &b, 1).ok);
}

TEST(AddressSpaceTest, RenderMapsListsRegions) {
  AddressSpace as;
  ASSERT_TRUE(as.MapFixed(0x10000, 4096, kProtRead | kProtExec, false, "libipmon"));
  std::string maps = as.RenderMaps();
  EXPECT_NE(maps.find("libipmon"), std::string::npos);
  EXPECT_NE(maps.find("r-x"), std::string::npos);
}

TEST(AddressSpaceTest, ReadCString) {
  AddressSpace as;
  ASSERT_TRUE(as.MapFixed(0x10000, 4096, kProtRead | kProtWrite, false, "s"));
  const char* msg = "hello";
  ASSERT_TRUE(as.Write(0x10000, msg, 6).ok);
  auto s = as.ReadCString(0x10000);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(*s, "hello");
}

TEST(LayoutTest, DclWindowsAreDisjoint) {
  Rng rng(1);
  LayoutPlanner planner(&rng);
  LayoutPlan a = planner.PlanFor(0);
  LayoutPlan b = planner.PlanFor(1);
  LayoutPlan c = planner.PlanFor(2);
  // No code region of one replica may overlap any code region of another.
  auto overlaps = [](GuestAddr s1, uint64_t l1, GuestAddr s2, uint64_t l2) {
    return s1 < s2 + l2 && s2 < s1 + l1;
  };
  for (const LayoutPlan* x : {&a, &b, &c}) {
    for (const LayoutPlan* y : {&a, &b, &c}) {
      if (x == y) {
        continue;
      }
      EXPECT_FALSE(overlaps(x->code_base, x->code_size, y->code_base, y->code_size));
      EXPECT_FALSE(overlaps(x->ipmon_base, x->ipmon_size, y->ipmon_base, y->ipmon_size));
      EXPECT_FALSE(overlaps(x->code_base, x->code_size, y->ipmon_base, y->ipmon_size));
    }
  }
}

TEST(LayoutTest, AslrRandomizesBases) {
  Rng rng1(1);
  Rng rng2(2);
  LayoutPlanner p1(&rng1);
  LayoutPlanner p2(&rng2);
  EXPECT_NE(p1.PlanFor(0).heap_base, p2.PlanFor(0).heap_base);
}

TEST(LayoutTest, NoAslrIsDeterministic) {
  Rng rng1(1);
  Rng rng2(99);
  LayoutOptions opts;
  opts.aslr = false;
  LayoutPlanner p1(&rng1, opts);
  LayoutPlanner p2(&rng2, opts);
  EXPECT_EQ(p1.PlanFor(0).code_base, p2.PlanFor(0).code_base);
  EXPECT_EQ(p1.PlanFor(0).heap_base, p2.PlanFor(0).heap_base);
}

TEST(ShmTest, CreateFindAttachDetach) {
  ShmRegistry reg;
  int id = reg.Get(ShmRegistry::kIpcPrivate, 16384, true, 1);
  ASSERT_GE(id, 0);
  ShmSegment* seg = reg.Find(id);
  ASSERT_NE(seg, nullptr);
  EXPECT_EQ(seg->size, 16384u);
  EXPECT_EQ(seg->frames.size(), 4u);
  reg.OnAttach(id);
  reg.OnDetach(id);
  EXPECT_NE(reg.Find(id), nullptr);  // Not removed: no IPC_RMID yet.
}

TEST(ShmTest, RemovedSegmentDestroyedAfterLastDetach) {
  ShmRegistry reg;
  int id = reg.Get(ShmRegistry::kIpcPrivate, 4096, true, 1);
  reg.OnAttach(id);
  EXPECT_EQ(reg.Remove(id), 0);
  EXPECT_NE(reg.Find(id), nullptr);  // Still attached.
  reg.OnDetach(id);
  EXPECT_EQ(reg.Find(id), nullptr);
}

TEST(ShmTest, KeyedLookup) {
  ShmRegistry reg;
  int id1 = reg.Get(1234, 4096, true, 1);
  int id2 = reg.Get(1234, 4096, false, 2);
  EXPECT_EQ(id1, id2);
  EXPECT_LT(reg.Get(9999, 4096, false, 1), 0);  // ENOENT without create.
}

}  // namespace
}  // namespace remon

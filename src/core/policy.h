// System call monitoring relaxation policies (paper §3.4, Table 1).
//
// ReMon eschews fixed monitoring policies: a *spatial* exemption level selects which
// system calls may execute as unmonitored calls through IP-MON, either
// unconditionally or conditionally on the type of the file descriptor involved
// (consulted through the IP-MON file map). Levels are cumulative — selecting a level
// enables its calls plus all preceding levels'. A *temporal* exemption policy
// probabilistically exempts calls that were repeatedly approved; the paper stresses
// such policies must be non-deterministic to be safe.
//
// This module is also the single source of truth for the execution mode of monitored
// calls inside GHUMVEE: master-only-with-replication versus local-in-every-replica.

#ifndef SRC_CORE_POLICY_H_
#define SRC_CORE_POLICY_H_

#include <cstdint>
#include <map>
#include <utility>
#include <string_view>
#include <vector>

#include "src/kernel/sysno.h"
#include "src/sim/rng.h"
#include "src/vfs/file.h"

namespace remon {

// Spatial exemption levels of Table 1, plus kNoIpmon (= GHUMVEE standalone).
enum class PolicyLevel : uint8_t {
  kNoIpmon = 0,
  kBase = 1,
  kNonsocketRo = 2,
  kNonsocketRw = 3,
  kSocketRo = 4,
  kSocketRw = 5,
};

std::string_view PolicyLevelName(PolicyLevel level);

// Temporal exemption (paper §3.4, second option): after a call site has been
// approved `approvals_required` times by GHUMVEE, subsequent identical calls are
// exempted with probability `exempt_probability` — drawn from the simulation RNG, so
// the pattern is unpredictable to an attacker, as the paper requires.
struct TemporalPolicy {
  bool enabled = false;
  int approvals_required = 32;
  double exempt_probability = 0.5;
};

class RelaxationPolicy {
 public:
  explicit RelaxationPolicy(PolicyLevel level, TemporalPolicy temporal = {});

  PolicyLevel level() const { return level_; }
  const TemporalPolicy& temporal() const { return temporal_; }

  // True if `nr` is unconditionally exempt at this level (no file-map consultation).
  bool UnconditionallyExempt(Sys nr) const;

  // True if `nr` *may* be exempt depending on its FD argument's type. The broker
  // forwards such calls to IP-MON, whose MAYBE_CHECKED handler decides.
  bool ConditionallyExempt(Sys nr) const;

  // Full decision for a call on an FD of type `fd_type` (kFree when the call has no
  // FD argument). This is IP-MON's MAYBE_CHECKED predicate.
  bool AllowsUnmonitored(Sys nr, FdType fd_type) const;

  // The registration mask IP-MON passes to the kernel: all calls that can ever be
  // dispatched unmonitored under this policy (unconditional + conditional).
  std::vector<bool> RegistrationMask() const;

  // Calls IP-MON implements handlers for (the paper's 67-call fast path); a superset
  // of what any level exempts.
  static bool IpmonSupports(Sys nr);

  // Calls whose effects are process-local resources: under lockstep these execute in
  // *every* replica and their results are not replicated (mmap, clone, futex, ...).
  static bool IsLocalCall(Sys nr);

  // Calls that may tamper with IP-MON or the RB; ReMon forcibly forwards these to
  // GHUMVEE regardless of level (paper §3.1).
  static bool ForcedCpCall(Sys nr);

 private:
  PolicyLevel level_;
  TemporalPolicy temporal_;
};

// Per-call-site temporal exemption state. Lives in IK-B — a single kernel-side
// component shared by all replicas — so one probabilistic draw covers the *logical*
// invocation: every replica of the replica set must route the same call the same way
// or the split-monitor protocol desynchronizes. Draws stay unpredictable to an
// attacker (they come from the kernel PRNG) but are consistent across replicas.
class TemporalExemptionState {
 public:
  TemporalExemptionState(const TemporalPolicy& policy, Rng* rng, int num_replicas = 2)
      : policy_(policy),
        rng_(rng),
        num_replicas_(num_replicas),
        approvals_(kNumSyscalls, 0) {}

  void set_num_replicas(int n) { num_replicas_ = n; }

  // Called when GHUMVEE approves a monitored call.
  void RecordApproval(Sys nr) { ++approvals_[static_cast<size_t>(nr)]; }

  // Decides whether replica `replica_index`'s next instance of `nr` may skip
  // monitoring. The first replica to reach a given invocation index draws; the
  // others reuse the cached decision. Never exempts calls IP-MON cannot replicate.
  bool MayExempt(Sys nr, int replica_index) {
    if (!policy_.enabled || !RelaxationPolicy::IpmonSupports(nr) ||
        RelaxationPolicy::ForcedCpCall(nr)) {
      return false;
    }
    // Per-replica invocation index for this call number.
    uint64_t index = per_replica_counts_[{replica_index, nr}]++;
    auto key = std::pair<uint32_t, uint64_t>(static_cast<uint32_t>(nr), index);
    auto it = decisions_.find(key);
    bool decision;
    if (it != decisions_.end()) {
      decision = it->second.first;
      if (++it->second.second >= num_replicas_) {
        decisions_.erase(it);  // All replicas consumed it.
      }
    } else {
      bool eligible = approvals_[static_cast<size_t>(nr)] >=
                      static_cast<uint64_t>(policy_.approvals_required);
      decision = eligible && rng_->NextBool(policy_.exempt_probability);
      if (num_replicas_ > 1) {
        decisions_[key] = {decision, 1};
      }
    }
    return decision;
  }

  uint64_t approvals(Sys nr) const { return approvals_[static_cast<size_t>(nr)]; }

 private:
  TemporalPolicy policy_;
  Rng* rng_;
  int num_replicas_;
  std::vector<uint64_t> approvals_;
  std::map<std::pair<int, Sys>, uint64_t> per_replica_counts_;
  std::map<std::pair<uint32_t, uint64_t>, std::pair<bool, int>> decisions_;
};

}  // namespace remon

#endif  // SRC_CORE_POLICY_H_

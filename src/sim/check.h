// Lightweight invariant-checking macros.
//
// Library code never throws; internal invariant violations abort with a message.
// CHECK is always on; DCHECK compiles out in NDEBUG builds.

#ifndef SRC_SIM_CHECK_H_
#define SRC_SIM_CHECK_H_

#include <execinfo.h>

#include <cstdio>
#include <cstdlib>

namespace remon {

[[noreturn]] inline void CheckFailure(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  void* frames[48];
  int n = backtrace(frames, 48);
  backtrace_symbols_fd(frames, n, 2);
  std::abort();
}

}  // namespace remon

#define REMON_CHECK(expr)                              \
  do {                                                 \
    if (!(expr)) {                                     \
      ::remon::CheckFailure(__FILE__, __LINE__, #expr); \
    }                                                  \
  } while (0)

#define REMON_CHECK_MSG(expr, msg)                     \
  do {                                                 \
    if (!(expr)) {                                     \
      ::remon::CheckFailure(__FILE__, __LINE__, msg);  \
    }                                                  \
  } while (0)

#ifdef NDEBUG
#define REMON_DCHECK(expr) \
  do {                     \
  } while (0)
#else
#define REMON_DCHECK(expr) REMON_CHECK(expr)
#endif

#endif  // SRC_SIM_CHECK_H_

// eventfd: a 64-bit counter usable as a wakeup channel.

#ifndef SRC_VFS_EVENTFD_H_
#define SRC_VFS_EVENTFD_H_

#include <cstdint>
#include <cstring>

#include "src/vfs/file.h"

namespace remon {

class EventFdFile : public File {
 public:
  explicit EventFdFile(uint64_t initial) : counter_(initial) {}

  FdType type() const override { return FdType::kEvent; }

  int64_t Read(void* buf, uint64_t len, uint64_t offset) override {
    if (len < 8) {
      return -kEINVAL;
    }
    if (counter_ == 0) {
      return -kEAGAIN;
    }
    std::memcpy(buf, &counter_, 8);
    counter_ = 0;
    NotifyPoll();
    return 8;
  }

  int64_t Write(const void* buf, uint64_t len, uint64_t offset) override {
    if (len < 8) {
      return -kEINVAL;
    }
    uint64_t add = 0;
    std::memcpy(&add, buf, 8);
    if (counter_ + add < counter_) {
      return -kEAGAIN;  // Overflow.
    }
    counter_ += add;
    NotifyPoll();
    return 8;
  }

  uint32_t Poll() const override {
    uint32_t mask = kPollOut;
    if (counter_ > 0) {
      mask |= kPollIn;
    }
    return mask;
  }

  uint64_t counter() const { return counter_; }

 private:
  uint64_t counter_;
};

}  // namespace remon

#endif  // SRC_VFS_EVENTFD_H_

// Discrete-event core: a virtual clock plus a time-ordered callback queue.
//
// The Simulator owns one EventQueue. Everything that "happens later" in the simulated
// world — a compute burst finishing, a packet arriving, a futex timeout — is an event.
// Ties are broken by insertion order so runs are deterministic.
//
// Steady-state operation is allocation-free (see docs/ARCHITECTURE.md, "Coroutine
// runtime & scheduler fast path"):
//  * callbacks are InlineFunction (inline storage, no heap fallback), held in pooled
//    nodes recycled through a free list; the time heap orders lightweight
//    {when, seq, node*} entries so heap sifts never move a callback;
//  * zero-delay events (the resume bounces behind every syscall) go to an intrusive
//    FIFO *ready lane* instead of the heap. The lane is drained in (when, seq) merge
//    order against the heap top, which reproduces the heap's FIFO-among-same-time
//    tie-break exactly — lane entries are appended with when == now() and seq is
//    globally monotonic, so the lane is always (when, seq)-sorted and time cannot
//    advance past a pending lane entry;
//  * cancellation is lazy via an open-addressed flat id set (O(1) per Cancel/pop,
//    no per-node lookup structure).

#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "src/sim/check.h"
#include "src/sim/inline_fn.h"
#include "src/sim/time.h"

namespace remon {

// Open-addressed flat hash set of EventIds (linear probing, backward-shift
// deletion). Ids start at 1, so 0 doubles as the empty-slot sentinel. Reaches a
// steady state with no allocation once grown to the run's working set.
class EventIdSet {
 public:
  bool Insert(uint64_t id);   // False if already present.
  bool Erase(uint64_t id);    // False if absent.
  bool Contains(uint64_t id) const;
  uint64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  void Grow();
  std::vector<uint64_t> slots_;  // Power-of-two capacity; 0 = empty.
  uint64_t size_ = 0;
};

class EventQueue {
 public:
  // Inline capacity sized for the fattest hot callback (PtraceResume's
  // continuation: thread + resume closure). Oversized closures fail to compile;
  // box cold-path state instead of raising this casually — every queued node
  // carries the full capacity.
  using Callback = InlineFunction<void(), 152>;

  // Opaque handle that can be used to cancel a scheduled event.
  using EventId = uint64_t;
  static constexpr EventId kInvalidEvent = 0;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;
  ~EventQueue();

  TimeNs now() const { return now_; }

  // Schedules `cb` to run at absolute virtual time `when` (>= now).
  EventId ScheduleAt(TimeNs when, Callback cb);

  // Schedules `cb` to run `delay` nanoseconds from now.
  EventId ScheduleAfter(DurationNs delay, Callback cb) {
    REMON_CHECK(delay >= 0);
    return ScheduleAt(now_ + delay, std::move(cb));
  }

  // Cancels a previously scheduled event. Returns false if it already ran or was
  // already cancelled.
  bool Cancel(EventId id);

  // Runs the next event, advancing the clock. Returns false if the queue is empty.
  bool RunOne();

  // Runs events until the queue drains or `deadline` would be passed.
  // Returns the number of events executed.
  uint64_t RunUntil(TimeNs deadline);

  // Runs events until the queue drains. Returns the number of events executed.
  uint64_t RunAll() { return RunUntil(kTimeNever); }

  bool empty() const { return live_events_ == 0; }
  uint64_t executed_count() const { return executed_count_; }

  // Determinism escape hatch for tests: with the lane disabled, events scheduled
  // at `now` take the heap path (the pre-lane code shape). Ordering must be
  // identical either way — tests/property_test.cc asserts exactly that.
  void set_ready_lane_enabled(bool on) { lane_enabled_ = on; }

  // Introspection for benches/tests.
  uint64_t lane_scheduled() const { return lane_scheduled_; }
  uint64_t heap_scheduled() const { return heap_scheduled_; }
  uint64_t node_chunks_allocated() const { return node_chunks_; }

 private:
  // One scheduled callback. Pooled: popped/cancelled nodes return to free_nodes_.
  // `next` chains the ready lane (live) or the free list (recycled).
  struct Node {
    Callback cb;
    EventId id = 0;
    Node* next = nullptr;
  };
  struct HeapEntry {
    TimeNs when;
    uint64_t seq;  // Tie-break: FIFO among same-time events (== the node's id).
    Node* node;
  };
  struct Later {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  Node* AcquireNode();
  void RecycleNode(Node* n);
  void PopLaneFront();
  // Drops cancelled entries at the lane front / heap top. Returns true if any
  // live event remains; fills the (when, seq) of the next live one.
  bool PeekNextLive(TimeNs* when, bool* from_lane);

  TimeNs now_ = 0;
  uint64_t next_seq_ = 1;
  uint64_t live_events_ = 0;
  uint64_t executed_count_ = 0;
  bool lane_enabled_ = true;

  std::priority_queue<HeapEntry, std::vector<HeapEntry>, Later> heap_;
  // Ready lane: FIFO of events scheduled for the current instant.
  Node* lane_head_ = nullptr;
  Node* lane_tail_ = nullptr;

  // Node pool.
  Node* free_nodes_ = nullptr;
  std::vector<std::unique_ptr<Node[]>> node_chunks_storage_;
  uint64_t node_chunks_ = 0;

  // Lazy cancellation: cancelled ids are recorded and skipped when reached.
  EventIdSet cancelled_;

  uint64_t lane_scheduled_ = 0;
  uint64_t heap_scheduled_ = 0;
};

}  // namespace remon

#endif  // SRC_SIM_EVENT_QUEUE_H_
